// Tests for the observability subsystem: sharded metrics registry,
// latency histograms, trace retention, and the exposition formats.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gsb::obs {
namespace {

/// A registry of its own per test: the global registry is shared process
/// state and other suites may be incrementing it.
class ObsRegistryTest : public ::testing::Test {
 protected:
  ObsRegistryTest() { registry_.set_enabled(true); }
  MetricsRegistry registry_;
};

std::uint64_t find_value(const RegistrySnapshot& snapshot,
                         const std::string& name,
                         const std::string& labels = {}) {
  for (const MetricSnapshot& metric : snapshot.metrics) {
    if (metric.name == name && metric.labels == labels) return metric.value;
  }
  ADD_FAILURE() << "metric not found: " << name << " {" << labels << "}";
  return 0;
}

const MetricSnapshot* find_metric(const RegistrySnapshot& snapshot,
                                  const std::string& name,
                                  const std::string& labels = {}) {
  for (const MetricSnapshot& metric : snapshot.metrics) {
    if (metric.name == name && metric.labels == labels) return &metric;
  }
  return nullptr;
}

TEST_F(ObsRegistryTest, CountersMergeAcrossThreads) {
  const Counter counter = registry_.counter("test_total", "help");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(find_value(registry_.scrape(), "test_total"),
            kThreads * kPerThread);
}

TEST_F(ObsRegistryTest, ScrapeUnderLoadSeesConsistentCounts) {
  // A scrape concurrent with writers must return a value between zero and
  // the final total (shard merging never double-counts or loses).
  const Counter counter = registry_.counter("load_total", "help");
  constexpr std::uint64_t kTotal = 50'000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) counter.inc();
    done.store(true);
  });
  std::uint64_t last = 0;
  while (!done.load()) {
    const std::uint64_t now = find_value(registry_.scrape(), "load_total");
    EXPECT_GE(now, last);  // monotone across scrapes
    EXPECT_LE(now, kTotal);
    last = now;
  }
  writer.join();
  EXPECT_EQ(find_value(registry_.scrape(), "load_total"), kTotal);
}

TEST_F(ObsRegistryTest, GaugeSetAndSetMax) {
  const Gauge gauge = registry_.gauge("test_gauge", "help");
  gauge.set(42);
  EXPECT_EQ(find_value(registry_.scrape(), "test_gauge"), 42u);
  gauge.set_max(17);  // below current: no change
  EXPECT_EQ(find_value(registry_.scrape(), "test_gauge"), 42u);
  gauge.set_max(99);
  EXPECT_EQ(find_value(registry_.scrape(), "test_gauge"), 99u);
}

TEST_F(ObsRegistryTest, HistogramBucketBoundaries) {
  const Histogram histogram = registry_.histogram("test_micros", "help");
  // Bucket i has bound 2^i: observe exact bounds and bounds+1.
  histogram.observe_micros(0);   // -> bucket 0 (bound 1)
  histogram.observe_micros(1);   // -> bucket 0
  histogram.observe_micros(2);   // -> bucket 1 (bound 2)
  histogram.observe_micros(3);   // -> bucket 2 (bound 4)
  histogram.observe_micros(4);   // -> bucket 2
  histogram.observe_micros(5);   // -> bucket 3 (bound 8)
  const std::uint64_t huge = std::uint64_t{1} << 40;
  histogram.observe_micros(huge);  // -> +Inf overflow
  const MetricSnapshot* metric =
      find_metric(registry_.scrape(), "test_micros");
  ASSERT_NE(metric, nullptr);
  const HistogramSnapshot& h = metric->histogram;
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.buckets[kHistogramBuckets], 1u);
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.sum_micros, 0u + 1 + 2 + 3 + 4 + 5 + huge);
}

TEST_F(ObsRegistryTest, RegistrationDedupesAndChecksType) {
  const Counter a = registry_.counter("dup_total", "help");
  const Counter b = registry_.counter("dup_total", "help");
  a.inc();
  b.inc();
  EXPECT_EQ(find_value(registry_.scrape(), "dup_total"), 2u);
  // Same name, different labels: distinct series.
  const Counter labelled =
      registry_.counter("dup_total", "help", "kind=\"x\"");
  labelled.inc(5);
  EXPECT_EQ(find_value(registry_.scrape(), "dup_total"), 2u);
  EXPECT_EQ(find_value(registry_.scrape(), "dup_total", "kind=\"x\""), 5u);
  // Same name+labels, different type: programming error.
  EXPECT_THROW(registry_.gauge("dup_total", "help"), std::logic_error);
}

TEST_F(ObsRegistryTest, DisabledRegistryIgnoresWrites) {
  const Counter counter = registry_.counter("off_total", "help");
  registry_.set_enabled(false);
  counter.inc(100);
  registry_.set_enabled(true);
  EXPECT_EQ(find_value(registry_.scrape(), "off_total"), 0u);
  counter.inc();
  EXPECT_EQ(find_value(registry_.scrape(), "off_total"), 1u);
}

TEST_F(ObsRegistryTest, InertHandlesAreSafe) {
  const Counter counter;
  const Gauge gauge;
  const Histogram histogram;
  counter.inc();
  gauge.set(1);
  gauge.set_max(2);
  histogram.observe_micros(3);  // no crash, no effect
}

TEST_F(ObsRegistryTest, CollectorsRunAtScrapeAndAreRemovable) {
  const std::size_t id = registry_.add_collector([](RegistrySnapshot& out) {
    MetricSnapshot metric;
    metric.name = "sampled_gauge";
    metric.type = MetricType::kGauge;
    metric.value = 7;
    out.metrics.push_back(std::move(metric));
  });
  EXPECT_EQ(find_value(registry_.scrape(), "sampled_gauge"), 7u);
  registry_.remove_collector(id);
  EXPECT_EQ(find_metric(registry_.scrape(), "sampled_gauge"), nullptr);
}

TEST_F(ObsRegistryTest, ResetZeroesEverything) {
  const Counter counter = registry_.counter("reset_total", "help");
  const Gauge gauge = registry_.gauge("reset_gauge", "help");
  counter.inc(3);
  gauge.set(9);
  registry_.reset();
  EXPECT_EQ(find_value(registry_.scrape(), "reset_total"), 0u);
  EXPECT_EQ(find_value(registry_.scrape(), "reset_gauge"), 0u);
}

// ---- Prometheus exposition grammar ---------------------------------------

TEST_F(ObsRegistryTest, PrometheusGrammarAndCumulativeBuckets) {
  registry_.counter("gsb_things_total", "Things.", "type=\"a\"").inc(2);
  registry_.counter("gsb_things_total", "Things.", "type=\"b\"").inc(3);
  registry_.gauge("gsb_level", "A level.").set(5);
  const Histogram histogram =
      registry_.histogram("gsb_lat_micros", "Latency.");
  histogram.observe_micros(1);
  histogram.observe_micros(100);
  histogram.observe_micros(std::uint64_t{1} << 40);
  const std::string text = render_prometheus(registry_.scrape());

  // Every non-comment line matches the exposition line grammar.
  const std::regex line_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^"]*\")*\})? [0-9]+(\.[0-9]+)?$)");
  std::istringstream stream(text);
  std::string line;
  std::size_t help_lines = 0;
  std::size_t type_lines = 0;
  while (std::getline(stream, line)) {
    if (line.rfind("# HELP ", 0) == 0) {
      ++help_lines;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      ++type_lines;
      continue;
    }
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad line: " << line;
  }
  // One HELP/TYPE pair per family, not per labelled series.
  EXPECT_EQ(help_lines, type_lines);
  EXPECT_NE(text.find("# TYPE gsb_things_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsb_things_total{type=\"a\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsb_level gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsb_lat_micros histogram\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE gsb_things_total counter",
                      text.find("# TYPE gsb_things_total counter") + 1),
            std::string::npos)
      << "HELP/TYPE emitted once per family";

  // Cumulative buckets: monotone nondecreasing, +Inf last and equal to
  // _count.
  std::istringstream bucket_stream(text);
  std::uint64_t previous = 0;
  std::uint64_t inf_value = 0;
  std::uint64_t count_value = 0;
  bool saw_inf = false;
  while (std::getline(bucket_stream, line)) {
    if (line.rfind("gsb_lat_micros_bucket{", 0) == 0) {
      const std::uint64_t value =
          std::stoull(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(value, previous) << "buckets must be cumulative: " << line;
      previous = value;
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        saw_inf = true;
        inf_value = value;
      } else {
        EXPECT_FALSE(saw_inf) << "+Inf must be the last bucket";
      }
    } else if (line.rfind("gsb_lat_micros_count ", 0) == 0) {
      count_value = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_value, 3u);
  EXPECT_EQ(count_value, 3u);
  EXPECT_NE(text.find("gsb_lat_micros_sum "), std::string::npos);
}

TEST_F(ObsRegistryTest, JsonRendersSingleLineWithFamilies) {
  registry_.counter("gsb_a_total", "A.").inc(4);
  registry_.gauge("gsb_b", "B.").set(6);
  registry_.histogram("gsb_c_micros", "C.").observe_micros(10);
  const std::string json = render_json(registry_.scrape());
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"gsb_a_total\""), std::string::npos);
}

TEST(Exposition, EscapeMultilineRoundTrip) {
  const std::string original = "line one\nline \\two\\\n\\n not a newline\n";
  const std::string escaped = escape_multiline(original);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(unescape_multiline(escaped), original);
  EXPECT_EQ(unescape_multiline(escape_multiline("")), "");
  EXPECT_EQ(unescape_multiline(escape_multiline("\\\\\n\n")), "\\\\\n\n");
}

TEST(Exposition, JsonEscapeControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// ---- Tracer ---------------------------------------------------------------

Trace make_trace(std::uint64_t total) {
  Trace trace;
  trace.request = "neighbors " + std::to_string(total);
  trace.transport = "test";
  trace.total_micros = total;
  trace.span_micros[static_cast<std::size_t>(Span::kExecute)] = total;
  return trace;
}

TEST(Tracer, RetainsSlowestN) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(4);
  for (std::uint64_t total = 1; total <= 10; ++total) {
    tracer.complete(make_trace(total));
  }
  const std::vector<Trace> slowest = tracer.slowest();
  ASSERT_EQ(slowest.size(), 4u);
  EXPECT_EQ(slowest[0].total_micros, 10u);
  EXPECT_EQ(slowest[1].total_micros, 9u);
  EXPECT_EQ(slowest[2].total_micros, 8u);
  EXPECT_EQ(slowest[3].total_micros, 7u);
  EXPECT_EQ(tracer.retained(), 4u);
  tracer.clear();
  EXPECT_EQ(tracer.retained(), 0u);
}

TEST(Tracer, SlowLogThresholdCounts) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_slow_log_micros(100);
  tracer.complete(make_trace(50));
  EXPECT_EQ(tracer.slow_logged(), 0u);
  tracer.complete(make_trace(100));
  tracer.complete(make_trace(5000));
  EXPECT_EQ(tracer.slow_logged(), 2u);
}

TEST(Tracer, TraceScopeFillsSpansAndTotal) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceScope scope(tracer, "unix", "degree 3");
    ASSERT_TRUE(scope.active());
    ASSERT_NE(active_trace(), nullptr);
    scope.add_pre_span(Span::kQueueWait, 250);
    { SpanTimer timer(Span::kExecute); }
  }
  EXPECT_EQ(active_trace(), nullptr);
  const std::vector<Trace> slowest = tracer.slowest();
  ASSERT_EQ(slowest.size(), 1u);
  const Trace& trace = slowest[0];
  EXPECT_EQ(trace.request, "degree 3");
  EXPECT_STREQ(trace.transport, "unix");
  EXPECT_EQ(trace.span_micros[static_cast<std::size_t>(Span::kQueueWait)],
            250u);
  EXPECT_GE(trace.total_micros, 250u);  // pre-span counts into the total
}

TEST(Tracer, DisabledTracerMakesScopesInert) {
  Tracer tracer;  // disabled by default
  {
    TraceScope scope(tracer, "unix", "ping");
    EXPECT_FALSE(scope.active());
    EXPECT_EQ(active_trace(), nullptr);
  }
  EXPECT_EQ(tracer.retained(), 0u);
}

TEST(Tracer, LongRequestsAreTruncated) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::string request(1000, 'x');
  { TraceScope scope(tracer, "tcp", request); }
  const std::vector<Trace> slowest = tracer.slowest();
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_EQ(slowest[0].request.size(), Trace::kMaxRequestChars);
}

TEST(Tracer, RenderTracesJsonShape) {
  Tracer tracer;
  tracer.set_enabled(true);
  Trace trace = make_trace(123);
  trace.request = "say \"hi\"";
  tracer.complete(std::move(trace));
  const std::string json = render_traces_json(tracer.slowest());
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"total_micros\":123"), std::string::npos);
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("\"execute\":123"), std::string::npos);
}

TEST(Uptime, MonotoneNonNegative) {
  anchor_process_start();
  EXPECT_GE(process_uptime_seconds(), 0u);
}

}  // namespace
}  // namespace gsb::obs
