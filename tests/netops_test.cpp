// Tests for Boolean graph algebra, including the bit-sliced
// at-least-k-of-n consensus filter.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "netops/ops.h"
#include "tests/test_helpers.h"

namespace gsb::netops {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(NetOps, IntersectionAndUnionKnown) {
  const Graph a = Graph::from_edges(4, {{0, 1}, {1, 2}});
  const Graph b = Graph::from_edges(4, {{1, 2}, {2, 3}});
  const Graph inter = graph_intersection(a, b);
  EXPECT_EQ(inter.num_edges(), 1u);
  EXPECT_TRUE(inter.has_edge(1, 2));
  const Graph uni = graph_union(a, b);
  EXPECT_EQ(uni.num_edges(), 3u);
}

TEST(NetOps, DifferenceAndSymmetricDifference) {
  const Graph a = Graph::from_edges(4, {{0, 1}, {1, 2}});
  const Graph b = Graph::from_edges(4, {{1, 2}, {2, 3}});
  const Graph diff = graph_difference(a, b);
  EXPECT_EQ(diff.num_edges(), 1u);
  EXPECT_TRUE(diff.has_edge(0, 1));
  const Graph sym = graph_symmetric_difference(a, b);
  EXPECT_EQ(sym.num_edges(), 2u);
  EXPECT_TRUE(sym.has_edge(0, 1));
  EXPECT_TRUE(sym.has_edge(2, 3));
}

TEST(NetOps, SizeMismatchThrows) {
  const Graph a(3);
  const Graph b(4);
  EXPECT_THROW(graph_intersection(a, b), std::invalid_argument);
  EXPECT_THROW(graph_difference(a, b), std::invalid_argument);
  EXPECT_THROW(graph_symmetric_difference(a, b), std::invalid_argument);
}

TEST(NetOps, EmptyListThrows) {
  EXPECT_THROW(graph_intersection(std::span<const Graph>{}),
               std::invalid_argument);
}

TEST(NetOps, AtLeastKValidation) {
  const std::vector<Graph> graphs(3, Graph(4));
  EXPECT_THROW(at_least_k_of_n(graphs, 0), std::invalid_argument);
  EXPECT_THROW(at_least_k_of_n(graphs, 4), std::invalid_argument);
}

TEST(NetOps, AtLeastKBoundaryCases) {
  util::Rng rng(3);
  std::vector<Graph> graphs;
  for (int i = 0; i < 4; ++i) graphs.push_back(graph::gnp(40, 0.15, rng));
  EXPECT_TRUE(at_least_k_of_n(graphs, 1) ==
              graph_union(std::span<const Graph>(graphs)));
  EXPECT_TRUE(at_least_k_of_n(graphs, 4) ==
              graph_intersection(std::span<const Graph>(graphs)));
}

TEST(NetOps, AtLeastKManual) {
  // Edge (0,1) in 3 graphs, (1,2) in 2, (2,3) in 1.
  std::vector<Graph> graphs;
  graphs.push_back(Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}));
  graphs.push_back(Graph::from_edges(4, {{0, 1}, {1, 2}}));
  graphs.push_back(Graph::from_edges(4, {{0, 1}}));
  const Graph two = at_least_k_of_n(graphs, 2);
  EXPECT_EQ(two.num_edges(), 2u);
  EXPECT_TRUE(two.has_edge(0, 1));
  EXPECT_TRUE(two.has_edge(1, 2));
  const Graph three = at_least_k_of_n(graphs, 3);
  EXPECT_EQ(three.num_edges(), 1u);
  EXPECT_TRUE(three.has_edge(0, 1));
}

class AtLeastKSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, int>> {
};

TEST_P(AtLeastKSweepTest, MatchesDirectCounting) {
  const auto [num_graphs, k, seed] = GetParam();
  if (k > num_graphs) {
    GTEST_SKIP() << "k exceeds the replicate count (rejected by contract)";
  }
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 60;
  std::vector<Graph> graphs;
  for (std::size_t i = 0; i < num_graphs; ++i) {
    graphs.push_back(graph::gnp(n, 0.2, rng));
  }
  const Graph got = at_least_k_of_n(graphs, k);
  Graph expect(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      std::size_t count = 0;
      for (const auto& g : graphs) count += g.has_edge(u, v);
      if (count >= k) expect.add_edge(u, v);
    }
  }
  EXPECT_TRUE(got == expect);
}

INSTANTIATE_TEST_SUITE_P(
    ConsensusSweep, AtLeastKSweepTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 5, 8),
                       ::testing::Values<std::size_t>(1, 2, 3),
                       ::testing::Values(1, 2)));

TEST(NetOps, ConsensusCleansNoisyReplicates) {
  // Planted complex + independent noise per replicate: 2-of-3 voting keeps
  // the complex and drops most noise.
  util::Rng rng(11);
  const std::size_t n = 80;
  Graph truth(n);
  const auto members = rng.sample_without_replacement(n, 10);
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      truth.add_edge(members[i], members[j]);
    }
  }
  std::vector<Graph> replicates;
  for (int r = 0; r < 3; ++r) {
    Graph rep = truth;
    const Graph noise = graph::gnp(n, 0.03, rng);
    for (const auto& [u, v] : noise.edge_list()) rep.add_edge(u, v);
    replicates.push_back(std::move(rep));
  }
  const Graph cleaned = at_least_k_of_n(replicates, 2);
  // All true edges survive (they are in all three replicates).
  for (const auto& [u, v] : truth.edge_list()) {
    EXPECT_TRUE(cleaned.has_edge(u, v));
  }
  // Noise shrinks sharply versus the union.
  const Graph uni = at_least_k_of_n(replicates, 1);
  EXPECT_LT(cleaned.num_edges() - truth.num_edges(),
            (uni.num_edges() - truth.num_edges()) / 2);
}

}  // namespace
}  // namespace gsb::netops
