// Tests for the Altix machine-model simulator: replay consistency,
// monotonic scaling behaviour on well-shaped traces, and overhead charging.

#include <gtest/gtest.h>

#include "altix/simulator.h"
#include "core/clique_enumerator.h"
#include "tests/test_helpers.h"

namespace gsb::altix {
namespace {

/// A synthetic trace with `levels` levels of `tasks` equal-cost tasks.
core::EnumerationStats uniform_trace(std::size_t levels, std::size_t tasks,
                                     double cost) {
  core::EnumerationStats stats;
  for (std::size_t l = 0; l < levels; ++l) {
    core::LevelTrace trace;
    trace.k = 3 + l;
    trace.task_work.assign(tasks, 100);
    trace.task_seconds.assign(tasks, cost);
    stats.traces.push_back(std::move(trace));
  }
  return stats;
}

TEST(Altix, SingleProcessorSumsCosts) {
  MachineModel model;
  model.barrier_base = 0.0;
  model.barrier_log2 = 0.0;
  model.scheduler_per_task = 0.0;
  model.collect_base = 0.0;
  const AltixSimulator sim(model);
  const auto trace = uniform_trace(4, 10, 0.01);
  const auto run = sim.simulate(trace, 1);
  EXPECT_NEAR(run.seconds, 4 * 10 * 0.01, 1e-9);
  EXPECT_EQ(run.level_seconds.size(), 4u);
  EXPECT_EQ(run.processors, 1u);
}

TEST(Altix, PerfectlyParallelTraceScales) {
  MachineModel model;
  model.remote_penalty = 0.0;
  model.barrier_base = 0.0;
  model.barrier_log2 = 0.0;
  model.scheduler_per_task = 0.0;
  model.collect_base = 0.0;
  const AltixSimulator sim(model);
  const auto trace = uniform_trace(2, 64, 0.01);
  const auto t1 = sim.simulate(trace, 1).seconds;
  const auto t8 = sim.simulate(trace, 8).seconds;
  EXPECT_NEAR(t1 / t8, 8.0, 0.01);
}

TEST(Altix, SpeedupBoundedByLargestTask) {
  MachineModel model;
  model.remote_penalty = 0.0;
  model.barrier_base = 0.0;
  model.barrier_log2 = 0.0;
  model.scheduler_per_task = 0.0;
  model.collect_base = 0.0;
  const AltixSimulator sim(model);
  core::EnumerationStats trace;
  core::LevelTrace level;
  level.task_seconds = {1.0, 0.01, 0.01, 0.01};
  level.task_work = {100, 1, 1, 1};
  trace.traces.push_back(level);
  const auto run = sim.simulate(trace, 64);
  EXPECT_GE(run.seconds, 1.0);  // the big task is the critical path
}

TEST(Altix, SyncOverheadDegradesLargeP) {
  MachineModel model;  // defaults include barrier costs
  const AltixSimulator sim(model);
  // Small workload: beyond some p the barrier dominates and speedup decays.
  const auto trace = uniform_trace(20, 64, 0.0002);
  const auto points = sim.sweep(trace, {1, 2, 4, 8, 16, 32, 64, 128, 256});
  double best = 0.0;
  std::size_t best_p = 1;
  for (const auto& point : points) {
    if (point.absolute_speedup > best) {
      best = point.absolute_speedup;
      best_p = point.processors;
    }
  }
  EXPECT_LT(best_p, 256u);  // optimum is strictly inside the range
  EXPECT_LT(points.back().absolute_speedup, best);
}

TEST(Altix, LargerWorkloadsScaleFurther) {
  // Figure 7's shape: more sequential work -> better speedup at 256p.
  const AltixSimulator sim(MachineModel{});
  const auto small = uniform_trace(10, 128, 0.0001);
  const auto large = uniform_trace(10, 128, 0.01);
  const auto s_small = sim.sweep(small, {1, 256}).back().absolute_speedup;
  const auto s_large = sim.sweep(large, {1, 256}).back().absolute_speedup;
  EXPECT_GT(s_large, s_small);
}

TEST(Altix, RemotePenaltyChargesTransfers) {
  MachineModel no_penalty;
  no_penalty.remote_penalty = 0.0;
  MachineModel penalty;
  penalty.remote_penalty = 10.0;  // exaggerated for visibility
  // Imbalanced costs force transfers from the contiguous initial split.
  core::EnumerationStats trace;
  core::LevelTrace level;
  for (int i = 0; i < 32; ++i) {
    level.task_seconds.push_back(i < 16 ? 0.01 : 0.0001);
    level.task_work.push_back(i < 16 ? 100 : 1);
  }
  trace.traces.push_back(level);
  const auto fast = AltixSimulator(no_penalty).simulate(trace, 4);
  const auto slow = AltixSimulator(penalty).simulate(trace, 4);
  EXPECT_GT(fast.transfers, 0u);
  EXPECT_GT(slow.seconds, fast.seconds);
}

TEST(Altix, PowerOfTwoCounts) {
  MachineModel model;
  model.max_processors = 256;
  const AltixSimulator sim(model);
  const auto counts = sim.power_of_two_counts();
  ASSERT_EQ(counts.size(), 9u);
  EXPECT_EQ(counts.front(), 1u);
  EXPECT_EQ(counts.back(), 256u);
}

TEST(Altix, RelativeSpeedupSeries) {
  MachineModel model;
  model.remote_penalty = 0.0;
  model.barrier_base = 0.0;
  model.barrier_log2 = 0.0;
  model.scheduler_per_task = 0.0;
  model.collect_base = 0.0;
  const AltixSimulator sim(model);
  const auto trace = uniform_trace(1, 1024, 0.001);
  const auto points = sim.sweep(trace, {1, 2, 4});
  EXPECT_NEAR(points[1].relative_speedup, 2.0, 0.05);
  EXPECT_NEAR(points[2].relative_speedup, 2.0, 0.05);
  EXPECT_NEAR(points[2].absolute_speedup, 4.0, 0.1);
}

TEST(Altix, RealTraceReplayIsConsistent) {
  // End to end: record a real instrumented run, then check the p=1 replay
  // roughly reproduces the measured task-time total.
  const auto g = test::random_graph(60, 0.3, 7);
  core::CliqueCollector sink;
  core::CliqueEnumeratorOptions options;
  options.range = core::SizeRange{3, 0};
  options.record_trace = true;
  const auto stats =
      core::enumerate_maximal_cliques(g, sink.callback(), options);
  double task_total = 0.0;
  for (const auto& level : stats.traces) {
    for (double s : level.task_seconds) task_total += s;
  }
  for (double s : stats.seed_trace.task_seconds) task_total += s;

  MachineModel model;
  model.barrier_base = 0.0;
  model.barrier_log2 = 0.0;
  model.scheduler_per_task = 0.0;
  model.collect_base = 0.0;
  const auto run = AltixSimulator(model).simulate(stats, 1);
  EXPECT_NEAR(run.seconds, task_total, task_total * 0.01 + 1e-9);
}

}  // namespace
}  // namespace gsb::altix

namespace gsb::altix {
namespace {

TEST(Altix, CollectPerProcessorBendsLargeP) {
  MachineModel flat;
  flat.remote_penalty = 0.0;
  flat.barrier_base = 0.0;
  flat.barrier_log2 = 0.0;
  flat.scheduler_per_task = 0.0;
  flat.collect_base = 0.0;
  MachineModel bent = flat;
  bent.collect_per_processor = 1e-4;
  const auto trace = uniform_trace(4, 512, 0.001);
  const double flat256 = AltixSimulator(flat).simulate(trace, 256).seconds;
  const double bent256 = AltixSimulator(bent).simulate(trace, 256).seconds;
  EXPECT_GT(bent256, flat256 + 4 * 256 * 1e-4 * 0.9);
  // ... while p=1 is uncharged (collection term only applies when p > 1).
  EXPECT_DOUBLE_EQ(AltixSimulator(bent).simulate(trace, 1).seconds,
                   AltixSimulator(flat).simulate(trace, 1).seconds);
}

TEST(Altix, WorkProxyCostingIgnoresJitterSpikes) {
  // Same total seconds; one task's *measured* time is an OS-jitter spike but
  // its work proxy says it is ordinary.  The replay must balance by proxy.
  core::EnumerationStats trace;
  core::LevelTrace level;
  level.task_work.assign(64, 10);      // uniform true work
  level.task_seconds.assign(64, 0.001);
  level.task_seconds[7] = 0.5;         // jitter spike
  trace.traces.push_back(level);
  MachineModel model;
  model.remote_penalty = 0.0;
  model.barrier_base = 0.0;
  model.barrier_log2 = 0.0;
  model.scheduler_per_task = 0.0;
  model.collect_base = 0.0;
  const auto run = AltixSimulator(model).simulate(trace, 8);
  const double total = 0.001 * 63 + 0.5;
  // Perfectly divisible by proxy: T8 == total/8, not max(spike, total/8).
  EXPECT_NEAR(run.seconds, total / 8.0, total * 0.02);
}

}  // namespace
}  // namespace gsb::altix
