// Tests for the verification oracles themselves: the two independent
// reference enumerators must agree with each other and with hand-computed
// cases before anything else is trusted against them.

#include <gtest/gtest.h>

#include "core/verify.h"
#include "graph/generators.h"
#include "tests/test_helpers.h"

namespace gsb::core {
namespace {

TEST(Verify, IsCliqueBasics) {
  const auto g = graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(is_clique(g, std::vector<VertexId>{0, 1, 2}));
  EXPECT_TRUE(is_clique(g, std::vector<VertexId>{0, 1}));
  EXPECT_TRUE(is_clique(g, std::vector<VertexId>{3}));
  EXPECT_FALSE(is_clique(g, std::vector<VertexId>{0, 3}));
  EXPECT_FALSE(is_clique(g, std::vector<VertexId>{0, 0}));
  EXPECT_FALSE(is_clique(g, std::vector<VertexId>{0, 9}));
}

TEST(Verify, IsMaximalCliqueBasics) {
  const auto g = graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_TRUE(is_maximal_clique(g, std::vector<VertexId>{0, 1, 2}));
  EXPECT_FALSE(is_maximal_clique(g, std::vector<VertexId>{0, 1}));
  EXPECT_TRUE(is_maximal_clique(g, std::vector<VertexId>{2, 3}));
  EXPECT_FALSE(is_maximal_clique(g, std::vector<VertexId>{}));
}

TEST(Verify, NormalizeSortsEverything) {
  std::vector<Clique> cliques{{3, 1}, {2, 0}};
  const auto norm = normalize(std::move(cliques));
  EXPECT_EQ(norm[0], (Clique{0, 2}));
  EXPECT_EQ(norm[1], (Clique{1, 3}));
}

TEST(Verify, FilterBySize) {
  const std::vector<Clique> cliques{{0}, {0, 1}, {0, 1, 2}, {0, 1, 2, 3}};
  const auto mid = filter_by_size(cliques, SizeRange{2, 3});
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0].size(), 2u);
  EXPECT_EQ(mid[1].size(), 3u);
  EXPECT_EQ(filter_by_size(cliques, SizeRange{3, 0}).size(), 2u);
}

TEST(Verify, TriangleWithPendant) {
  const auto g = graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto expect =
      normalize(std::vector<Clique>{{0, 1, 2}, {2, 3}});
  EXPECT_EQ(reference_maximal_cliques(g), expect);
  EXPECT_EQ(exhaustive_maximal_cliques(g), expect);
}

TEST(Verify, EmptyAndEdgelessGraphs) {
  const graph::Graph empty(0);
  EXPECT_TRUE(reference_maximal_cliques(empty).empty());
  const graph::Graph isolated(3);
  const auto expect = normalize(std::vector<Clique>{{0}, {1}, {2}});
  EXPECT_EQ(reference_maximal_cliques(isolated), expect);
  EXPECT_EQ(exhaustive_maximal_cliques(isolated), expect);
}

TEST(Verify, CompleteGraphSingleClique) {
  util::Rng rng(1);
  const auto g = graph::gnp(8, 1.0, rng);
  const auto cliques = reference_maximal_cliques(g);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].size(), 8u);
  EXPECT_EQ(exhaustive_maximal_cliques(g), cliques);
}

TEST(Verify, MoonMoserCount) {
  // Complete 3-partite K(3,3,3): 3^3 = 27 maximal cliques, all of size 3.
  graph::Graph g(9);
  for (VertexId u = 0; u < 9; ++u) {
    for (VertexId v = u + 1; v < 9; ++v) {
      if (u / 3 != v / 3) g.add_edge(u, v);
    }
  }
  const auto cliques = reference_maximal_cliques(g);
  EXPECT_EQ(cliques.size(), 27u);
  for (const auto& clique : cliques) EXPECT_EQ(clique.size(), 3u);
  EXPECT_EQ(exhaustive_maximal_cliques(g), cliques);
}

class OracleAgreementTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {};

TEST_P(OracleAgreementTest, ReferenceMatchesExhaustive) {
  const auto [n, p, seed] = GetParam();
  const auto g = test::random_graph(n, p, static_cast<std::uint64_t>(seed));
  const auto ref = reference_maximal_cliques(g);
  EXPECT_EQ(ref, exhaustive_maximal_cliques(g));
  for (const auto& clique : ref) {
    EXPECT_TRUE(is_maximal_clique(g, clique));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallGraphSweep, OracleAgreementTest,
    ::testing::Combine(::testing::Values<std::size_t>(5, 9, 13),
                       ::testing::Values(0.15, 0.4, 0.7),
                       ::testing::Values(1, 2, 3)));

TEST(Verify, ReferenceKCliquesTriangleGraph) {
  const auto g = graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_EQ(reference_kcliques(g, 2).size(), 4u);   // the edges
  EXPECT_EQ(reference_kcliques(g, 3).size(), 1u);   // the triangle
  EXPECT_TRUE(reference_kcliques(g, 4).empty());
  EXPECT_EQ(reference_kcliques(g, 1).size(), 4u);
}

}  // namespace
}  // namespace gsb::core
