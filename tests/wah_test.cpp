// Tests for the WAH compressed bitmap: round-trips, compressed-domain
// algebra equivalence, and compression behaviour on sparse data.

#include <gtest/gtest.h>

#include <iterator>
#include <tuple>

#include "bitset/dynamic_bitset.h"
#include "bitset/wah_bitset.h"
#include "util/rng.h"

namespace gsb::bits {
namespace {

DynamicBitset random_bits(std::size_t n, double density, util::Rng& rng) {
  DynamicBitset bits(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(density)) bits.set(i);
  }
  return bits;
}

TEST(Wah, EmptyRoundtrip) {
  DynamicBitset bits(100);
  const WahBitset packed = WahBitset::compress(bits);
  EXPECT_EQ(packed.decompress(), bits);
  EXPECT_EQ(packed.count(), 0u);
  EXPECT_FALSE(packed.any());
}

TEST(Wah, FullRoundtrip) {
  DynamicBitset bits(250);
  bits.set_all();
  const WahBitset packed = WahBitset::compress(bits);
  EXPECT_EQ(packed.decompress(), bits);
  EXPECT_EQ(packed.count(), 250u);
  EXPECT_TRUE(packed.any());
}

TEST(Wah, SingleBitPositions) {
  for (std::size_t pos : {0u, 30u, 31u, 32u, 61u, 62u, 63u, 92u, 99u}) {
    DynamicBitset bits(100);
    bits.set(pos);
    const WahBitset packed = WahBitset::compress(bits);
    EXPECT_EQ(packed.decompress(), bits) << "pos=" << pos;
    EXPECT_EQ(packed.count(), 1u);
    EXPECT_TRUE(packed.any());
  }
}

TEST(Wah, LongRunsCompress) {
  DynamicBitset bits(31 * 1000);
  for (std::size_t i = 0; i < 31; ++i) bits.set(i);           // 1 literal-ish
  for (std::size_t i = 31 * 500; i < 31 * 501; ++i) bits.set(i);
  const WahBitset packed = WahBitset::compress(bits);
  EXPECT_EQ(packed.decompress(), bits);
  // Two 1-groups plus two zero-fills: far fewer than 1000 words.
  EXPECT_LT(packed.words().size(), 10u);
  EXPECT_GT(packed.compression_ratio(), 50.0);
}

TEST(Wah, SparseNeighborhoodCompressionRatio) {
  util::Rng rng(77);
  // 0.3% density, the paper's denser graph.
  const DynamicBitset bits = random_bits(12422, 0.003, rng);
  const WahBitset packed = WahBitset::compress(bits);
  EXPECT_EQ(packed.decompress(), bits);
  EXPECT_GT(packed.compression_ratio(), 2.0);
}

TEST(Wah, SizeMismatchThrows) {
  const WahBitset a = WahBitset::compress(DynamicBitset(100));
  const WahBitset b = WahBitset::compress(DynamicBitset(101));
  EXPECT_THROW((void)a.and_with(b), std::invalid_argument);
  EXPECT_THROW((void)a.or_with(b), std::invalid_argument);
}

TEST(Wah, EqualityAndWords) {
  DynamicBitset bits(64);
  bits.set(5);
  const WahBitset a = WahBitset::compress(bits);
  const WahBitset b = WahBitset::compress(bits);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a.words().empty());
}

class WahAlgebraTest : public ::testing::TestWithParam<
                           std::tuple<std::size_t, double, double, int>> {};

TEST_P(WahAlgebraTest, CompressedOpsMatchUncompressed) {
  const auto [n, da, db, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 1000 + n);
  const DynamicBitset a = random_bits(n, da, rng);
  const DynamicBitset b = random_bits(n, db, rng);
  const WahBitset wa = WahBitset::compress(a);
  const WahBitset wb = WahBitset::compress(b);

  // Round trips.
  ASSERT_EQ(wa.decompress(), a);
  ASSERT_EQ(wb.decompress(), b);
  EXPECT_EQ(wa.count(), a.count());
  EXPECT_EQ(wa.any(), a.any());

  // AND in the compressed domain.
  DynamicBitset expect_and = a;
  expect_and &= b;
  EXPECT_EQ(wa.and_with(wb).decompress(), expect_and);

  // OR in the compressed domain.
  DynamicBitset expect_or = a;
  expect_or |= b;
  EXPECT_EQ(wa.or_with(wb).decompress(), expect_or);

  // Intersection test without materialization.
  EXPECT_EQ(WahBitset::intersects(wa, wb),
            DynamicBitset::intersects(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, WahAlgebraTest,
    ::testing::Combine(::testing::Values<std::size_t>(31, 62, 93, 100, 500,
                                                      4096),
                       ::testing::Values(0.0, 0.001, 0.05, 0.5, 1.0),
                       ::testing::Values(0.001, 0.3),
                       ::testing::Values(1, 2)));

// Randomized differential test: 1000 seeded (size, density-pair) draws with
// densities spanning the sparse-to-dense range the graph neighborhoods
// actually exhibit.  Each draw checks the full compressed-domain algebra
// (AND, OR, count, any, intersects) against the DynamicBitset reference.
TEST(WahDifferential, RandomizedAlgebraVsDynamicBitsetReference) {
  constexpr double kDensities[] = {0.001, 0.005, 0.02, 0.1, 0.25, 0.5};
  constexpr std::size_t kIterations = 1000;
  util::Rng rng(20050131);
  for (std::size_t iter = 0; iter < kIterations; ++iter) {
    // Sizes hit group boundaries (multiples of 31) and arbitrary tails.
    const std::size_t n = 1 + rng.below(5000);
    const double da = kDensities[iter % std::size(kDensities)];
    const double db = kDensities[(iter / std::size(kDensities)) %
                                 std::size(kDensities)];
    const DynamicBitset a = random_bits(n, da, rng);
    const DynamicBitset b = random_bits(n, db, rng);
    const WahBitset wa = WahBitset::compress(a);
    const WahBitset wb = WahBitset::compress(b);

    ASSERT_EQ(wa.decompress(), a) << "iter=" << iter << " n=" << n;
    ASSERT_EQ(wa.count(), a.count()) << "iter=" << iter << " n=" << n;
    ASSERT_EQ(wa.any(), a.any()) << "iter=" << iter << " n=" << n;

    DynamicBitset expect_and = a;
    expect_and &= b;
    DynamicBitset expect_or = a;
    expect_or |= b;
    const WahBitset wand = wa.and_with(wb);
    const WahBitset wor = wa.or_with(wb);
    ASSERT_EQ(wand.decompress(), expect_and)
        << "iter=" << iter << " n=" << n << " da=" << da << " db=" << db;
    ASSERT_EQ(wand.count(), expect_and.count()) << "iter=" << iter;
    ASSERT_EQ(wor.decompress(), expect_or)
        << "iter=" << iter << " n=" << n << " da=" << da << " db=" << db;
    ASSERT_EQ(wor.count(), expect_or.count()) << "iter=" << iter;
    ASSERT_EQ(WahBitset::intersects(wa, wb), DynamicBitset::intersects(a, b))
        << "iter=" << iter;
  }
}

}  // namespace
}  // namespace gsb::bits
