// Chaos suite for the robustness layer: the deterministic fault-injection
// shim (schedule grammar, replayable decisions, env arming), the hardened
// util::io wrappers, FileWriter's crash-safe publish (fault-injected builds
// complete byte-identical to a clean run or leave no artifact and no temp),
// stale-temp detection, truncation/corruption at every 64-byte boundary of
// all three container formats, request deadlines on the stream and TCP
// transports, idle/slow-reader disconnects, and RetryingClient's
// reconnect-and-replay producing byte-identical responses under injected
// connection resets.

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bio/generator.h"
#include "bio/normalize.h"
#include "bio/tiled_correlation.h"
#include "core/bron_kerbosch.h"
#include "graph/graph.h"
#include "pipeline/overlap.h"
#include "service/artifact_verify.h"
#include "service/batch_executor.h"
#include "service/client.h"
#include "service/clique_index.h"
#include "service/graph_catalog.h"
#include "service/server.h"
#include "service/tcp_server.h"
#include "storage/clique_stream.h"
#include "storage/gsbg_writer.h"
#include "storage/mapped_graph.h"
#include "tests/test_helpers.h"
#include "util/fault_injection.h"
#include "util/io.h"

#if defined(__linux__)
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#endif

namespace gsb::service {
namespace {

namespace fs = std::filesystem;

fault::OpSchedule& op(fault::Schedule& s, fault::Op o) {
  return s.ops[static_cast<std::size_t>(o)];
}

/// A per-test scratch directory under the system temp root, removed on
/// destruction so chaos runs never leak artifacts between tests.
struct ScratchDir {
  fs::path dir;

  explicit ScratchDir(const std::string& stem) {
    dir = fs::temp_directory_path() /
          (stem + "." + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir / name).string();
  }
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct Built {
  std::string gsbg;
  std::string gsbc;
  std::string gsbci;
};

/// Builds all three container formats from `g` under whatever fault
/// schedule is currently installed.
Built build_artifacts(const graph::Graph& g, const ScratchDir& d,
                      const std::string& stem) {
  Built b;
  b.gsbg = d.path(stem + ".gsbg");
  b.gsbc = d.path(stem + ".gsbc");
  b.gsbci = default_index_path(b.gsbc);
  storage::write_gsbg_file(g, b.gsbg);
  storage::GsbcWriter writer(b.gsbc, g.order());
  core::degeneracy_bk(g, [&](std::span<const graph::VertexId> clique) {
    writer.append(clique);
  });
  writer.close();
  build_clique_index(b.gsbc, b.gsbci);
  return b;
}

GraphSpec spec_for(const Built& b) {
  GraphSpec spec;
  spec.graph_path = b.gsbg;
  spec.cliques_path = b.gsbc;
  spec.probe_index = true;
  return spec;
}

// -- schedule grammar --------------------------------------------------------

TEST(FaultSchedule, ParsesFullGrammar) {
  const auto s = fault::parse_schedule(
      "seed=7;write.eintr=0.25;read.short=0.5;fsync.error=ENOSPC:0.125;"
      "recv.fail_after=3:ECONNRESET");
  EXPECT_EQ(s.seed, 7u);
  EXPECT_DOUBLE_EQ(s.ops[static_cast<std::size_t>(fault::Op::kWrite)].eintr,
                   0.25);
  EXPECT_DOUBLE_EQ(s.ops[static_cast<std::size_t>(fault::Op::kRead)].short_io,
                   0.5);
  const auto& fsync = s.ops[static_cast<std::size_t>(fault::Op::kFsync)];
  EXPECT_DOUBLE_EQ(fsync.error, 0.125);
  EXPECT_EQ(fsync.error_errno, ENOSPC);
  const auto& recv = s.ops[static_cast<std::size_t>(fault::Op::kRecv)];
  EXPECT_EQ(recv.fail_after, 3u);
  EXPECT_EQ(recv.fail_errno, ECONNRESET);
}

TEST(FaultSchedule, RejectsMalformedClauses) {
  EXPECT_THROW(fault::parse_schedule("write.eintr=1.0"), std::runtime_error);
  EXPECT_THROW(fault::parse_schedule("nosuchop.eintr=0.1"),
               std::runtime_error);
  EXPECT_THROW(fault::parse_schedule("write.error=EBOGUS:0.1"),
               std::runtime_error);
  EXPECT_THROW(fault::parse_schedule("write.eintr"), std::runtime_error);
  EXPECT_THROW(fault::parse_schedule("seed=banana"), std::runtime_error);
}

TEST(FaultSchedule, OpNamesRoundTrip) {
  for (std::size_t i = 0; i < fault::kNumOps; ++i) {
    const auto o = static_cast<fault::Op>(i);
    const auto back = fault::op_from_name(fault::op_name(o));
    ASSERT_TRUE(back.has_value()) << fault::op_name(o);
    EXPECT_EQ(*back, o);
  }
  EXPECT_FALSE(fault::op_from_name("nosuchop").has_value());
}

TEST(FaultSchedule, DecisionsReplayDeterministically) {
  fault::Schedule s;
  s.seed = 99;
  op(s, fault::Op::kWrite) = {.eintr = 0.4, .short_io = 0.4};

  const auto run = [&s] {
    fault::ScheduleScope scope(s);
    std::vector<std::pair<int, std::size_t>> log;
    for (int i = 0; i < 300; ++i) {
      const auto d = fault::decide(fault::Op::kWrite, 4096);
      log.emplace_back(static_cast<int>(d.kind), d.count);
    }
    return log;
  };

  const auto first = run();
  EXPECT_EQ(first, run()) << "same schedule must replay the same faults";
  std::size_t injected = 0;
  for (const auto& [kind, count] : first) {
    if (kind != static_cast<int>(fault::Decision::Kind::kNone)) ++injected;
  }
  EXPECT_GT(injected, 0u) << "a 40%/40% schedule must actually fire";
}

TEST(FaultSchedule, InstallFromEnvArmsAndRejects) {
  ASSERT_EQ(::setenv("GSB_FAULT_SCHEDULE", "seed=3;write.eintr=0.1", 1), 0);
  EXPECT_TRUE(fault::install_from_env());
  EXPECT_TRUE(fault::enabled());
  fault::disable();

  ASSERT_EQ(::setenv("GSB_FAULT_SCHEDULE", "write.eintr=2.0", 1), 0);
  EXPECT_THROW(fault::install_from_env(), std::runtime_error);
  fault::disable();

  ASSERT_EQ(::unsetenv("GSB_FAULT_SCHEDULE"), 0);
  EXPECT_FALSE(fault::install_from_env());
  EXPECT_FALSE(fault::enabled());
}

// -- io wrappers under faults ------------------------------------------------

std::vector<char> patterned(std::size_t n) {
  std::vector<char> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<char>(i * 31 + 7);
  }
  return data;
}

TEST(IoWrappers, WriteFullSurvivesEintrStormsAndShortWrites) {
  ScratchDir d("gsb_rb_write_full");
  const std::string path = d.path("payload.bin");
  const auto data = patterned(1u << 20);

  fault::Schedule s;
  op(s, fault::Op::kWrite) = {.eintr = 0.5, .short_io = 0.5};
  {
    fault::ScheduleScope scope(s);
    const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(util::io::write_full(fd, data.data(), data.size()));
    ::close(fd);
    EXPECT_GT(fault::injected_total(), 0u);
  }
  const std::string back = read_bytes(path);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(IoWrappers, ReadFullSurvivesEintrStormsAndShortReads) {
  ScratchDir d("gsb_rb_read_full");
  const std::string path = d.path("payload.bin");
  const auto data = patterned(1u << 20);
  write_bytes(path, std::string(data.data(), data.size()));

  fault::Schedule s;
  op(s, fault::Op::kRead) = {.eintr = 0.5, .short_io = 0.5};
  std::vector<char> back(data.size());
  {
    fault::ScheduleScope scope(s);
    const int fd = ::open(path.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(util::io::read_full(fd, back.data(), back.size()));
    ::close(fd);
    EXPECT_GT(fault::injected_total(), 0u);
  }
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

TEST(IoWrappers, InjectedErrnoSurfacesThroughWriteFull) {
  ScratchDir d("gsb_rb_write_errno");
  fault::Schedule s;
  op(s, fault::Op::kWrite) = {.fail_after = 1, .fail_errno = ENOSPC};
  fault::ScheduleScope scope(s);

  const int fd =
      ::open(d.path("doomed.bin").c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  const char byte = 'x';
  EXPECT_FALSE(util::io::write_full(fd, &byte, 1));
  EXPECT_EQ(errno, ENOSPC);
  ::close(fd);
}

// -- FileWriter crash safety -------------------------------------------------

TEST(FileWriterCrashSafety, CommitPublishesAtomicallyAndRemovesTemp) {
  ScratchDir d("gsb_rb_fw_commit");
  const std::string path = d.path("artifact.bin");
  const auto data = patterned(100000);

  util::io::FileWriter writer(path);
  const std::string temp = writer.temp_path();
  writer.write(data.data(), data.size());
  EXPECT_FALSE(fs::exists(path));
  writer.commit();

  EXPECT_FALSE(fs::exists(temp));
  const std::string back = read_bytes(path);
  ASSERT_EQ(back.size(), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

/// Shared body: a FileWriter session that dies under `s` must leave the
/// final path untouched and unlink its temp.
void expect_all_or_nothing(const fault::Schedule& s, const std::string& path) {
  const std::string temp = util::io::temp_path_for(path);
  {
    fault::ScheduleScope scope(s);
    const auto data = patterned(4096);
    EXPECT_THROW(
        {
          util::io::FileWriter writer(path);
          writer.write(data.data(), data.size());
          writer.commit();
        },
        std::runtime_error);
  }
  EXPECT_FALSE(fs::exists(path)) << "failed commit must not publish";
  EXPECT_FALSE(fs::exists(temp)) << "failed commit must not leak its temp";
}

TEST(FileWriterCrashSafety, FailedWriteLeavesNoArtifactAndNoTemp) {
  ScratchDir d("gsb_rb_fw_write");
  fault::Schedule s;
  op(s, fault::Op::kWrite) = {.fail_after = 1, .fail_errno = ENOSPC};
  expect_all_or_nothing(s, d.path("artifact.bin"));
}

TEST(FileWriterCrashSafety, FailedFsyncLeavesNoArtifactAndNoTemp) {
  ScratchDir d("gsb_rb_fw_fsync");
  fault::Schedule s;
  op(s, fault::Op::kFsync) = {.fail_after = 1, .fail_errno = EIO};
  expect_all_or_nothing(s, d.path("artifact.bin"));
}

TEST(FileWriterCrashSafety, FailedRenameLeavesNoArtifactAndNoTemp) {
  ScratchDir d("gsb_rb_fw_rename");
  fault::Schedule s;
  op(s, fault::Op::kRename) = {.fail_after = 1, .fail_errno = EIO};
  expect_all_or_nothing(s, d.path("artifact.bin"));
}

// -- chaos builds ------------------------------------------------------------

TEST(ChaosBuilds, ArtifactsByteIdenticalUnderRecoverableFaults) {
  ScratchDir d("gsb_rb_chaos_build");
  const auto g = test::random_graph(60, 0.3, 77);

  const Built clean = build_artifacts(g, d, "clean");

  fault::Schedule s;
  s.seed = 41;
  op(s, fault::Op::kRead) = {.eintr = 0.3, .short_io = 0.3};
  op(s, fault::Op::kWrite) = {.eintr = 0.3, .short_io = 0.3};
  op(s, fault::Op::kFsync) = {.eintr = 0.5};
  op(s, fault::Op::kOpen) = {.eintr = 0.5};
  Built faulted;
  {
    fault::ScheduleScope scope(s);
    faulted = build_artifacts(g, d, "faulted");
    EXPECT_GT(fault::injected_total(), 0u) << "the schedule must engage";
  }

  EXPECT_EQ(read_bytes(clean.gsbg), read_bytes(faulted.gsbg));
  EXPECT_EQ(read_bytes(clean.gsbc), read_bytes(faulted.gsbc));
  EXPECT_EQ(read_bytes(clean.gsbci), read_bytes(faulted.gsbci));

  // Nothing recoverable may leak a temp file.
  for (const auto& entry : fs::directory_iterator(d.dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << entry.path();
  }
}

/// One full pipeline pass: tiled out-of-core correlation -> .gsbg ->
/// mapped analysis -> .gsbc clique stream.  `overlap` routes the
/// analysis stages through the DAG scheduler (with the prefetch job);
/// staged runs them inline.  Analysis threads stay at 1 so the clique
/// emission order is the sequential one in both modes — the comparison
/// then isolates the scheduler and the fault shim.
void run_pipeline_to_artifacts(const bio::ExpressionMatrix& expression,
                               const std::string& gsbg_path,
                               const std::string& gsbc_path, bool overlap) {
  bio::TiledCorrelationOptions tiled;
  tiled.threshold = 0.55;
  tiled.tile_rows = 48;
  tiled.threads = 2;
  bio::build_correlation_gsbg(expression, gsbg_path, tiled);

  const auto mapped = storage::MappedGraph::open(gsbg_path);
  pipeline::AnalysisOptions analysis;
  analysis.range = core::SizeRange{3, 0};
  analysis.threads = 1;
  analysis.clique_out = gsbc_path;
  analysis.overlap = overlap;
  if (overlap) analysis.prefetch = &mapped;
  pipeline::run_analysis(mapped.view(), analysis);
}

TEST(ChaosBuilds, OverlappedPipelineUnderFaultsMatchesCleanStagedRun) {
  ScratchDir d("gsb_rb_chaos_overlap");
  util::Rng rng(2005);
  bio::MicroarrayConfig config;
  config.genes = 120;
  config.samples = 24;
  config.modules = 6;
  auto data = bio::generate_microarray(config, rng);
  bio::quantile_normalize(data.expression);

  run_pipeline_to_artifacts(data.expression, d.path("clean.gsbg"),
                            d.path("clean.gsbc"), /*overlap=*/false);

  fault::Schedule s;
  s.seed = 19;
  op(s, fault::Op::kRead) = {.eintr = 0.3, .short_io = 0.3};
  op(s, fault::Op::kWrite) = {.eintr = 0.3, .short_io = 0.3};
  op(s, fault::Op::kFsync) = {.eintr = 0.5};
  op(s, fault::Op::kOpen) = {.eintr = 0.5};
  {
    fault::ScheduleScope scope(s);
    run_pipeline_to_artifacts(data.expression, d.path("faulted.gsbg"),
                              d.path("faulted.gsbc"), /*overlap=*/true);
    EXPECT_GT(fault::injected_total(), 0u) << "the schedule must engage";
  }

  EXPECT_EQ(read_bytes(d.path("clean.gsbg")),
            read_bytes(d.path("faulted.gsbg")));
  EXPECT_EQ(read_bytes(d.path("clean.gsbc")),
            read_bytes(d.path("faulted.gsbc")));
  for (const auto& entry : fs::directory_iterator(d.dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << entry.path();
  }
}

TEST(ChaosBuilds, FatalFaultsLeaveNoArtifactForAnyFormat) {
  ScratchDir d("gsb_rb_fatal_build");
  const auto g = test::random_graph(60, 0.3, 77);

  {  // .gsbg: the very first payload write hits ENOSPC.
    const std::string path = d.path("dead.gsbg");
    fault::Schedule s;
    op(s, fault::Op::kWrite) = {.fail_after = 1, .fail_errno = ENOSPC};
    fault::ScheduleScope scope(s);
    EXPECT_THROW(storage::write_gsbg_file(g, path), std::runtime_error);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(util::io::temp_path_for(path)));
  }
  {  // .gsbc: the commit-time fsync reports EIO.
    const std::string path = d.path("dead.gsbc");
    fault::Schedule s;
    op(s, fault::Op::kFsync) = {.fail_after = 1, .fail_errno = EIO};
    fault::ScheduleScope scope(s);
    EXPECT_THROW(
        {
          storage::GsbcWriter writer(path, g.order());
          core::degeneracy_bk(g,
                              [&](std::span<const graph::VertexId> clique) {
                                writer.append(clique);
                              });
          writer.close();
        },
        std::runtime_error);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(util::io::temp_path_for(path)));
  }
  {  // .gsbci: the atomic-publish rename fails.
    const Built b = build_artifacts(g, d, "source");
    const std::string index = d.path("dead.gsbci");
    fault::Schedule s;
    op(s, fault::Op::kRename) = {.fail_after = 1, .fail_errno = EIO};
    fault::ScheduleScope scope(s);
    EXPECT_THROW(build_clique_index(b.gsbc, index), std::runtime_error);
    EXPECT_FALSE(fs::exists(index));
    EXPECT_FALSE(fs::exists(util::io::temp_path_for(index)));
  }
}

// -- stale temp scan ---------------------------------------------------------

TEST(StaleTemps, ReportsDeadPidTempsOnly) {
  ScratchDir d("gsb_rb_stale");

  // A pid that is guaranteed dead: fork a child that exits immediately.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) ::_exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  const std::string stale =
      d.path("a.gsbc.tmp." + std::to_string(static_cast<long>(child)));
  const std::string live =
      d.path("b.gsbg.tmp." + std::to_string(static_cast<long>(::getpid())));
  write_bytes(stale, "partial");
  write_bytes(live, "in-flight");
  write_bytes(d.path("c.gsbc.tmp.notapid"), "not a temp");
  write_bytes(d.path("d.gsbc"), "a real artifact name");

  const auto found = util::io::find_stale_temps(d.dir.string());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].path, stale);
  EXPECT_EQ(found[0].pid, static_cast<long>(child));
}

// -- truncation / corruption at every 64-byte boundary -----------------------

TEST(ContainerDamage, TruncationAtEveryBoundaryFailsTyped) {
  ScratchDir d("gsb_rb_truncate");
  const auto g = test::random_graph(60, 0.3, 77);
  const Built b = build_artifacts(g, d, "whole");

  for (const std::string& src : {b.gsbg, b.gsbc, b.gsbci}) {
    const std::string bytes = read_bytes(src);
    ASSERT_GT(bytes.size(), 64u) << src;
    const std::string damaged = d.path("truncated.bin");
    for (std::size_t cut = 0; cut < bytes.size(); cut += 64) {
      write_bytes(damaged, bytes.substr(0, cut));
      EXPECT_THROW(verify_artifact(damaged), std::runtime_error)
          << src << " truncated to " << cut << " bytes";
    }
    // One byte short of complete must fail too.
    write_bytes(damaged, bytes.substr(0, bytes.size() - 1));
    EXPECT_THROW(verify_artifact(damaged), std::runtime_error)
        << src << " truncated by one byte";
  }
}

TEST(ContainerDamage, BitFlipAtEveryBoundaryFailsTyped) {
  ScratchDir d("gsb_rb_corrupt");
  const auto g = test::random_graph(60, 0.3, 77);
  const Built b = build_artifacts(g, d, "whole");

  for (const std::string& src : {b.gsbg, b.gsbc, b.gsbci}) {
    const std::string bytes = read_bytes(src);
    const std::string damaged = d.path("corrupt.bin");

    // A flipped magic byte must be rejected as an unknown container.
    std::string broken_magic = bytes;
    broken_magic[0] = static_cast<char>(broken_magic[0] ^ 0xFF);
    write_bytes(damaged, broken_magic);
    EXPECT_THROW(verify_artifact(damaged), std::runtime_error) << src;

    // A flipped payload byte at any 64-byte boundary must fail the
    // checksum (or a structural check) — never crash.
    for (std::size_t offset = 64; offset < bytes.size(); offset += 64) {
      std::string corrupt = bytes;
      corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0xFF);
      write_bytes(damaged, corrupt);
      EXPECT_THROW(verify_artifact(damaged), std::runtime_error)
          << src << " flipped at " << offset;
    }
  }
}

TEST(VerifyArtifact, AcceptsHealthyArtifactsAndNamesTheirKind) {
  ScratchDir d("gsb_rb_verify_ok");
  const auto g = test::random_graph(60, 0.3, 77);
  const Built b = build_artifacts(g, d, "whole");

  EXPECT_TRUE(verify_artifact(b.gsbg).starts_with("ok gsbg '"));
  EXPECT_TRUE(verify_artifact(b.gsbc).starts_with("ok gsbc '"));
  EXPECT_TRUE(verify_artifact(b.gsbci).starts_with("ok gsbci '"));
}

TEST(VerifyArtifact, RejectsUnknownMagicAndMissingFiles) {
  ScratchDir d("gsb_rb_verify_bad");
  const std::string unknown = d.path("mystery.bin");
  write_bytes(unknown, "NOTMAGIC plus some trailing payload bytes");
  EXPECT_THROW(verify_artifact(unknown), std::runtime_error);
  EXPECT_THROW(verify_artifact(d.path("does-not-exist.gsbg")),
               std::runtime_error);
}

// -- stream-transport request deadlines --------------------------------------

constexpr char kDeadlineError[] = "error: deadline exceeded";

TEST(StreamDeadline, ShedsTypedErrorsInOrderAndCountsTimeouts) {
  ScratchDir d("gsb_rb_stream_deadline");
  const auto g = test::random_graph(32, 0.3, 13);
  const Built b = build_artifacts(g, d, "g");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(b));

  // Reference answer from an untimed run.
  std::string reference;
  {
    std::istringstream in("degree 5\nshutdown\n");
    std::ostringstream out;
    serve_stream(entry, in, out, {});
    std::istringstream lines(out.str());
    ASSERT_TRUE(std::getline(lines, reference));
    ASSERT_TRUE(reference.starts_with("degree 5:")) << reference;
  }

  constexpr std::size_t kRequests = 40000;
  std::string script;
  for (std::size_t i = 0; i < kRequests; ++i) script += "degree 5\n";
  script += "stats\nshutdown\n";

  std::istringstream in(script);
  std::ostringstream out;
  ServeOptions options;
  options.request_timeout_ms = 2;
  const auto stats = serve_stream(entry, in, out, options);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t ok = 0, shed = 0, index = 0;
  std::string stats_line;
  while (std::getline(lines, line)) {
    if (index < kRequests) {
      if (line == reference) {
        ++ok;
      } else {
        EXPECT_EQ(line, kDeadlineError) << "request " << index;
        ++shed;
      }
    } else if (index == kRequests) {
      stats_line = line;
    } else {
      EXPECT_EQ(line, "ok shutdown");
    }
    ++index;
  }
  EXPECT_EQ(index, kRequests + 2);
  EXPECT_GE(ok, 1u) << "the first request must beat a 2ms deadline";
  EXPECT_GE(shed, 1u) << "40k requests cannot all fit in 2ms";
  EXPECT_EQ(ok + shed, kRequests);
  EXPECT_EQ(stats.timeouts, shed);
  EXPECT_NE(stats_line.find(" timeouts="), std::string::npos) << stats_line;
}

TEST(StreamDeadline, StatsLineOmitsTimeoutsUnlessConfigured) {
  ScratchDir d("gsb_rb_stream_stats");
  const auto g = test::random_graph(24, 0.3, 13);
  const Built b = build_artifacts(g, d, "g");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(b));

  {  // Default options: the stats line stays byte-compatible.
    std::istringstream in("stats\nshutdown\n");
    std::ostringstream out;
    serve_stream(entry, in, out, {});
    EXPECT_EQ(out.str().find(" timeouts="), std::string::npos) << out.str();
  }
  {  // A configured (generous) deadline reports the counter.
    std::istringstream in("stats\nshutdown\n");
    std::ostringstream out;
    ServeOptions options;
    options.request_timeout_ms = 60000;
    serve_stream(entry, in, out, options);
    EXPECT_NE(out.str().find(" timeouts=0"), std::string::npos) << out.str();
  }
}

// -- TCP transport: deadlines, idle/slow-reader closes, retry-and-replay -----

#if defined(__linux__)

/// One TCP server on an ephemeral port, serving on a background thread.
struct TcpFixture {
  GraphCatalog catalog;
  std::shared_ptr<const GraphEntry> entry;
  std::optional<TcpServer> server;
  std::thread thread;
  TcpServeStats stats;

  explicit TcpFixture(const Built& b, TcpServerOptions options = {}) {
    entry = catalog.open("g", spec_for(b));
    server.emplace(entry, "127.0.0.1:0", options);
    thread = std::thread([this] { stats = server->serve(); });
  }

  [[nodiscard]] std::string address() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }

  ~TcpFixture() {
    if (thread.joinable()) {
      try {
        ServiceClient::connect_tcp(address()).request("shutdown");
      } catch (const std::exception&) {
      }
      thread.join();
    }
  }
};

std::uint64_t stats_field(const std::string& line, const std::string& key) {
  const auto pos = line.find(" " + key + "=");
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + key.size() + 2, nullptr, 10);
}

TEST(TcpRobustness, RequestDeadlineProducesTypedErrorsInOrder) {
  ScratchDir d("gsb_rb_tcp_deadline");
  const auto g = test::random_graph(32, 0.3, 13);
  const Built b = build_artifacts(g, d, "g");

  TcpServerOptions options;
  options.threads = 1;
  options.request_timeout_ms = 5;
  options.max_pipeline = 1u << 20;  // the deadline, not admission, sheds
  TcpFixture fx(b, options);

  auto client = ServiceClient::connect_tcp(fx.address());
  const std::string reference = client.request("degree 5");
  ASSERT_TRUE(reference.starts_with("degree 5:")) << reference;

  const std::vector<std::string> lines(40000, "degree 5");
  const auto responses = client.request_pipelined(lines);
  ASSERT_EQ(responses.size(), lines.size());
  std::size_t ok = 0, shed = 0;
  for (const auto& r : responses) {
    if (r == reference) {
      ++ok;
    } else {
      ASSERT_EQ(r, kDeadlineError);
      ++shed;
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(shed, 1u) << "40k single-threaded requests cannot all meet 5ms";

  const std::string stats_line = client.request("stats");
  EXPECT_EQ(stats_field(stats_line, "timeouts"), shed) << stats_line;
}

TEST(TcpRobustness, IdleConnectionIsClosedAndCounted) {
  ScratchDir d("gsb_rb_tcp_idle");
  const auto g = test::random_graph(24, 0.3, 13);
  const Built b = build_artifacts(g, d, "g");

  TcpServerOptions options;
  options.idle_timeout_ms = 60;
  TcpFixture fx(b, options);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Say nothing; the server must close the connection on its own.
  timeval rcv_timeout{.tv_sec = 5, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv_timeout,
               sizeof(rcv_timeout));
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0) << "expected EOF from idle close";
  ::close(fd);

  auto control = ServiceClient::connect_tcp(fx.address());
  const std::string stats_line = control.request("stats");
  EXPECT_GE(stats_field(stats_line, "timeouts"), 1u) << stats_line;
}

TEST(TcpRobustness, SlowReaderIsDisconnectedByWriteTimeout) {
  ScratchDir d("gsb_rb_tcp_slow");
  const auto g = test::random_graph(64, 0.5, 13);
  const Built b = build_artifacts(g, d, "g");

  TcpServerOptions options;
  options.threads = 2;
  options.write_timeout_ms = 100;
  options.max_pipeline = 1u << 20;  // answer everything; volume is the test
  TcpFixture fx(b, options);

  // A client with a tiny receive window that floods queries and never
  // reads: the server's writes stall, and the write timeout must
  // disconnect it instead of buffering forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  timeval snd_timeout{.tv_sec = 5, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd_timeout,
               sizeof(snd_timeout));

  // Enough response volume to overflow what the kernel alone can buffer
  // toward a zero-window peer (tcp_wmem autotunes to a few MB on
  // loopback), so the server's userland output queue must stall.
  std::string flood;
  for (int i = 0; i < 80000; ++i) {
    flood += "neighbors " + std::to_string(i % 64) + "\n";
  }
  std::size_t sent = 0;
  while (sent < flood.size()) {
    const ssize_t n = ::send(fd, flood.data() + sent, flood.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;  // the server already reset us — also a pass
    sent += static_cast<std::size_t>(n);
  }

  // The server must record a write timeout within a few stall periods.
  auto control = ServiceClient::connect_tcp(fx.address());
  std::uint64_t timeouts = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    timeouts = stats_field(control.request("stats"), "timeouts");
    if (timeouts >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(timeouts, 1u) << "slow reader was never disconnected";
  ::close(fd);
}

/// A workload touching every query kind, with deliberate errors mixed in.
std::vector<std::string> retry_workload(const graph::Graph& g,
                                        std::size_t repeats) {
  std::vector<std::string> lines;
  const auto n = static_cast<graph::VertexId>(g.order());
  for (std::size_t r = 0; r < repeats; ++r) {
    for (graph::VertexId v = 0; v < n; v += 3) {
      lines.push_back("neighbors " + std::to_string(v));
      lines.push_back("degree " + std::to_string(v));
      lines.push_back("cliques-containing " + std::to_string(v));
      lines.push_back("common-neighbors " + std::to_string(v) + " " +
                      std::to_string((v + 1) % n));
    }
    lines.push_back("top-hubs 5");
    lines.push_back("neighbors " + std::to_string(n));  // out of range
    lines.push_back("no-such-query 1");                 // parse error
  }
  return lines;
}

TEST(TcpRobustness, RetryingClientReplaysByteIdenticalAfterInjectedReset) {
  ScratchDir d("gsb_rb_tcp_retry");
  const auto g = test::random_graph(48, 0.3, 41);
  const Built b = build_artifacts(g, d, "g");
  TcpFixture fx(b);

  const auto lines = retry_workload(g, 10);
  std::vector<std::string> reference;
  {
    auto clean = ServiceClient::connect_tcp(fx.address());
    reference = clean.request_pipelined(lines);
  }

  // Exactly one injected ECONNRESET, early in the exchange.  Whichever
  // side's recv it lands on, the session breaks mid-pipeline and the
  // client must reconnect and replay the unanswered suffix.
  fault::Schedule s;
  s.seed = 7;
  op(s, fault::Op::kRecv) = {.fail_after = 3, .fail_errno = ECONNRESET};
  {
    fault::ScheduleScope scope(s);
    RetryPolicy policy;
    policy.retries = 5;
    policy.timeout_ms = 10000;
    policy.base_backoff_ms = 1;
    policy.max_backoff_ms = 10;
    RetryingClient client(fx.address(), /*unix_socket=*/false, policy);
    const auto responses = client.request_pipelined(lines);
    EXPECT_EQ(responses, reference)
        << "replayed session must be byte-identical to the clean one";
    EXPECT_GE(client.reconnects(), 1u);
    EXPECT_GE(fault::injected_total(), 1u);
  }
}

TEST(TcpRobustness, RetryingClientGivesUpAfterItsBudget) {
  RetryPolicy policy;
  policy.retries = 2;
  policy.timeout_ms = 500;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 5;
  // Port 9 (discard) has no listener in the test environment.
  RetryingClient client("127.0.0.1:9", /*unix_socket=*/false, policy);
  EXPECT_THROW(client.request("ping"), std::runtime_error);
  EXPECT_GE(client.reconnects(), 2u);
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace gsb::service
