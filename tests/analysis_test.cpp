// Tests for paraclique extraction, clique statistics and hub reporting.

#include <gtest/gtest.h>

#include "analysis/clique_stats.h"
#include "analysis/hubs.h"
#include "analysis/paraclique.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "tests/test_helpers.h"

namespace gsb::analysis {
namespace {

using core::Clique;
using graph::Graph;
using graph::VertexId;

Graph clique_with_satellite() {
  // K5 on {0..4}; vertex 5 adjacent to 4 of them; vertex 6 to 2.
  Graph g(7);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) g.add_edge(u, v);
  }
  for (VertexId v = 0; v < 4; ++v) g.add_edge(5, v);
  g.add_edge(6, 0);
  g.add_edge(6, 1);
  return g;
}

TEST(Paraclique, GlomOneAbsorbsNearMember) {
  const Graph g = clique_with_satellite();
  const Clique seed{0, 1, 2, 3, 4};
  ParacliqueOptions options;
  options.glom = 1;
  const auto para = grow_paraclique(g, seed, options);
  EXPECT_EQ(para.members, (Clique{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(para.seed_size, 5u);
  EXPECT_LT(para.density, 1.0);
  EXPECT_GT(para.density, 0.9);
}

TEST(Paraclique, GlomZeroAddsOnlyFullNeighbors) {
  const Graph g = clique_with_satellite();
  const Clique seed{0, 1, 2, 3};  // vertices 4 and 5 both see all of these
  ParacliqueOptions options;
  options.glom = 0;
  const auto para = grow_paraclique(g, seed, options);
  // Scan order admits 4 first; afterwards 5 misses member 4, and with
  // glom = 0 the result must stay a clique — so 5 stays out.
  EXPECT_EQ(para.members, (Clique{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(para.density, 1.0);
}

TEST(Paraclique, MaxRoundsLimitsGrowth) {
  // Chain of near-members: each round admits one more vertex.
  const Graph g = clique_with_satellite();
  ParacliqueOptions options;
  options.glom = 3;
  options.max_rounds = 1;
  const auto one_round = grow_paraclique(g, {0, 1, 2, 3, 4}, options);
  options.max_rounds = 0;
  const auto fixpoint = grow_paraclique(g, {0, 1, 2, 3, 4}, options);
  EXPECT_LE(one_round.members.size(), fixpoint.members.size());
}

TEST(Paraclique, ExtractUsesMaximumClique) {
  const Graph g = clique_with_satellite();
  const auto para = extract_paraclique(g, ParacliqueOptions{1, 0});
  EXPECT_EQ(para.seed_size, 5u);
  EXPECT_EQ(para.members.size(), 6u);
}

TEST(Paraclique, ExtractAllFindsPlantedModules) {
  util::Rng rng(13);
  graph::ModuleGraphConfig config;
  config.n = 120;
  config.num_modules = 4;
  config.min_module_size = 8;
  config.max_module_size = 12;
  config.overlap = 0.0;
  config.background_edges = 30;
  const auto mg = graph::planted_modules(config, rng);
  const auto paras = extract_all_paracliques(mg.graph, 6, {1, 0});
  EXPECT_GE(paras.size(), 3u);
  EXPECT_GE(paras.front().members.size(), 12u);
}

TEST(CliqueStats, SpectrumAggregates) {
  const std::vector<Clique> cliques{{0, 1}, {1, 2, 3}, {0, 2}, {4, 5, 6, 7}};
  const auto spectrum = clique_spectrum(cliques);
  EXPECT_EQ(spectrum.total, 4u);
  EXPECT_EQ(spectrum.min_size, 2u);
  EXPECT_EQ(spectrum.max_size, 4u);
  EXPECT_DOUBLE_EQ(spectrum.mean_size, 11.0 / 4.0);
  EXPECT_EQ(spectrum.size_histogram.at(2), 2u);
}

TEST(CliqueStats, EmptySpectrum) {
  const auto spectrum = clique_spectrum({});
  EXPECT_EQ(spectrum.total, 0u);
  EXPECT_EQ(spectrum.max_size, 0u);
}

TEST(CliqueStats, Participation) {
  const std::vector<Clique> cliques{{0, 1}, {1, 2}, {1, 3}};
  const auto counts = vertex_participation(5, cliques);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[4], 0u);
}

TEST(CliqueStats, JaccardOverlap) {
  EXPECT_DOUBLE_EQ(clique_overlap({0, 1, 2}, {1, 2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(clique_overlap({0, 1}, {2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(clique_overlap({0, 1}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(clique_overlap({}, {}), 0.0);
}

TEST(CliqueStats, MeanPairwiseOverlap) {
  const std::vector<Clique> cliques{{0, 1, 2}, {1, 2, 3}, {4, 5}};
  EXPECT_NEAR(mean_pairwise_overlap(cliques), 0.5 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean_pairwise_overlap({{0, 1}}), 0.0);
}

TEST(Hubs, RanksByDegreeThenParticipation) {
  const Graph g = clique_with_satellite();
  core::CliqueCollector sink;
  core::base_bk(g, sink.callback());
  const auto hubs = top_hubs(g, sink.cliques(), 3);
  ASSERT_EQ(hubs.size(), 3u);
  // Vertices 0 and 1 have degree 6 (K5 + satellite 5 + satellite 6).
  EXPECT_EQ(hubs[0].degree, 6u);
  EXPECT_TRUE(hubs[0].vertex == 0 || hubs[0].vertex == 1);
  EXPECT_GE(hubs[0].clique_participation, 1u);
  const auto top = most_connected_vertex(g, sink.cliques());
  EXPECT_EQ(top.vertex, hubs[0].vertex);
}

TEST(Hubs, EmptyGraphThrows) {
  const Graph g(0);
  EXPECT_THROW(most_connected_vertex(g, {}), std::invalid_argument);
}

}  // namespace
}  // namespace gsb::analysis
