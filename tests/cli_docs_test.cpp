// Consistency between docs/CLI.md and the gsb driver source: every flag
// documented in the reference must be accepted (queried) by gsb_main.cpp,
// and every flag the driver's usage/help text advertises must be
// documented.  This is what keeps the usage strings from drifting away
// from the manual again (the drift this suite was introduced to fix).

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string source_path(const char* relative) {
  return std::string(GSB_SOURCE_DIR) + "/" + relative;
}

/// All `--flag` tokens in \p text (lowercase word chars and dashes after
/// a leading "--"; `---` rules and em-dashes never match).
std::set<std::string> flag_tokens(const std::string& text) {
  std::set<std::string> flags;
  static const std::regex pattern("--([a-z][a-z0-9-]*)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), pattern);
       it != std::sregex_iterator(); ++it) {
    flags.insert((*it)[1].str());
  }
  return flags;
}

/// Flag names the driver actually queries: util::Cli accessors plus the
/// local size_flag helper.
std::set<std::string> queried_flags(const std::string& source) {
  std::set<std::string> flags;
  static const std::regex accessors(
      R"re(cli\.(?:get|get_bool|get_int|get_double|has)\(\s*"([a-z][a-z0-9-]*)")re");
  for (auto it = std::sregex_iterator(source.begin(), source.end(),
                                      accessors);
       it != std::sregex_iterator(); ++it) {
    flags.insert((*it)[1].str());
  }
  static const std::regex size_helper(
      R"re(size_flag\(cli,\s*"([a-z][a-z0-9-]*)")re");
  for (auto it = std::sregex_iterator(source.begin(), source.end(),
                                      size_helper);
       it != std::sregex_iterator(); ++it) {
    flags.insert((*it)[1].str());
  }
  return flags;
}

std::string join(const std::set<std::string>& flags) {
  std::string out;
  for (const auto& flag : flags) out += " --" + flag;
  return out;
}

TEST(CliDocs, EveryDocumentedFlagIsAcceptedByGsb) {
  const auto documented = flag_tokens(read_file(source_path("docs/CLI.md")));
  const auto queried =
      queried_flags(read_file(source_path("src/cli/gsb_main.cpp")));
  ASSERT_FALSE(documented.empty());
  ASSERT_FALSE(queried.empty());
  std::set<std::string> unknown;
  for (const auto& flag : documented) {
    if (!queried.contains(flag)) unknown.insert(flag);
  }
  EXPECT_TRUE(unknown.empty())
      << "docs/CLI.md documents flags gsb never reads:" << join(unknown);
}

TEST(CliDocs, EveryAdvertisedFlagIsDocumented) {
  const auto documented = flag_tokens(read_file(source_path("docs/CLI.md")));
  // The driver source's flag mentions live in its usage/help strings and
  // header examples — all user-visible, so all must appear in the manual.
  const auto advertised =
      flag_tokens(read_file(source_path("src/cli/gsb_main.cpp")));
  ASSERT_FALSE(advertised.empty());
  std::set<std::string> undocumented;
  for (const auto& flag : advertised) {
    if (!documented.contains(flag)) undocumented.insert(flag);
  }
  EXPECT_TRUE(undocumented.empty())
      << "gsb help text mentions flags missing from docs/CLI.md:"
      << join(undocumented);
}

TEST(CliDocs, ReadmeLinksTheDocSet) {
  const auto readme = read_file(source_path("README.md"));
  EXPECT_NE(readme.find("docs/ARCHITECTURE.md"), std::string::npos);
  EXPECT_NE(readme.find("docs/CLI.md"), std::string::npos);
  EXPECT_NE(readme.find("docs/FORMATS.md"), std::string::npos);
  EXPECT_NE(readme.find("docs/OBSERVABILITY.md"), std::string::npos);
  EXPECT_NE(readme.find("docs/PERFORMANCE.md"), std::string::npos);
  EXPECT_NE(readme.find("docs/SERVICE.md"), std::string::npos);
}

/// Subcommands dispatched by main(): `if (command == "...")`.
std::set<std::string> dispatched_commands(const std::string& source) {
  std::set<std::string> commands;
  static const std::regex pattern(R"re(command == "([a-z]+)")re");
  for (auto it = std::sregex_iterator(source.begin(), source.end(), pattern);
       it != std::sregex_iterator(); ++it) {
    commands.insert((*it)[1].str());
  }
  return commands;
}

TEST(CliDocs, EveryDispatchedCommandIsDocumented) {
  const auto commands =
      dispatched_commands(read_file(source_path("src/cli/gsb_main.cpp")));
  ASSERT_FALSE(commands.empty());
  const auto manual = read_file(source_path("docs/CLI.md"));
  for (const auto& command : commands) {
    if (command == "help") continue;  // `gsb help` == --help, no section
    EXPECT_NE(manual.find("## gsb " + command), std::string::npos)
        << "docs/CLI.md lacks a section for `gsb " << command << "`";
  }
  // ...and the summary usage text lists each one.
  const auto source = read_file(source_path("src/cli/gsb_main.cpp"));
  for (const auto& command : commands) {
    EXPECT_NE(source.find("\n  " + command), std::string::npos)
        << "gsb --help does not list the `" << command << "` command";
  }
}

TEST(CliDocs, ServiceDocCoversTheQueryGrammar) {
  // Every query keyword the parser dispatches on must be documented in the
  // SERVICE.md grammar (and advertised queries must parse — the reverse
  // direction is covered by service_test's parse cases).
  const auto parser = read_file(source_path("src/service/query.cpp"));
  std::set<std::string> keywords;
  static const std::regex pattern(R"re(keyword == "([a-z-]+)")re");
  for (auto it = std::sregex_iterator(parser.begin(), parser.end(), pattern);
       it != std::sregex_iterator(); ++it) {
    keywords.insert((*it)[1].str());
  }
  ASSERT_GE(keywords.size(), 8u);
  const auto doc = read_file(source_path("docs/SERVICE.md"));
  for (const auto& keyword : keywords) {
    EXPECT_NE(doc.find("`" + keyword), std::string::npos)
        << "docs/SERVICE.md does not document the `" << keyword
        << "` query";
  }
}

}  // namespace
