#ifndef GSB_TESTS_TEST_HELPERS_H
#define GSB_TESTS_TEST_HELPERS_H

/// Shared fixtures for the clique-algorithm test suites: seeded random
/// graphs and collector-based wrappers that return normalized clique sets
/// for order-insensitive comparison.

#include <vector>

#include "core/bron_kerbosch.h"
#include "core/clique.h"
#include "core/clique_enumerator.h"
#include "core/kose.h"
#include "core/parallel_enumerator.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace gsb::test {

inline graph::Graph random_graph(std::size_t n, double p,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::gnp(n, p, rng);
}

inline std::vector<core::Clique> run_base_bk(const graph::Graph& g,
                                             const core::SizeRange& range = {}) {
  core::CliqueCollector out;
  core::base_bk(g, out.callback(), range);
  return core::normalize(std::move(out.cliques()));
}

inline std::vector<core::Clique> run_improved_bk(
    const graph::Graph& g, const core::SizeRange& range = {}) {
  core::CliqueCollector out;
  core::improved_bk(g, out.callback(), range);
  return core::normalize(std::move(out.cliques()));
}

inline std::vector<core::Clique> run_clique_enumerator(
    const graph::Graph& g, core::CliqueEnumeratorOptions options = {}) {
  core::CliqueCollector out;
  core::enumerate_maximal_cliques(g, out.callback(), options);
  return core::normalize(std::move(out.cliques()));
}

inline std::vector<core::Clique> run_parallel_enumerator(
    const graph::Graph& g, core::ParallelOptions options = {}) {
  core::CliqueCollector out;
  core::enumerate_maximal_cliques_parallel(g, out.callback(), options);
  return core::normalize(std::move(out.cliques()));
}

inline std::vector<core::Clique> run_kose(const graph::Graph& g,
                                          core::KoseOptions options = {}) {
  core::CliqueCollector out;
  core::kose_ram(g, out.callback(), options);
  return core::normalize(std::move(out.cliques()));
}

/// Reference maximal cliques filtered to a size window.
inline std::vector<core::Clique> reference_in_range(
    const graph::Graph& g, const core::SizeRange& range) {
  return core::filter_by_size(core::reference_maximal_cliques(g), range);
}

}  // namespace gsb::test

#endif  // GSB_TESTS_TEST_HELPERS_H
