// Tests for the Kose RAM baseline: identical result sets, non-decreasing
// order, faithful cost/memory characteristics.

#include <gtest/gtest.h>

#include "core/clique_enumerator.h"
#include "core/kose.h"
#include "core/verify.h"
#include "tests/test_helpers.h"

namespace gsb::core {
namespace {

TEST(KoseRam, TriangleWithPendant) {
  const auto g = graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  KoseOptions options;
  options.range = SizeRange{2, 0};
  const auto got = test::run_kose(g, options);
  EXPECT_EQ(got, test::reference_in_range(g, options.range));
}

TEST(KoseRam, NonDecreasingOrder) {
  const auto g = test::random_graph(30, 0.4, 3);
  std::size_t last = 0;
  KoseOptions options;
  options.range = SizeRange{2, 0};
  kose_ram(g,
           [&](std::span<const VertexId> clique) {
             EXPECT_GE(clique.size(), last);
             last = clique.size();
           },
           options);
  EXPECT_GT(last, 0u);
}

TEST(KoseRam, WindowFiltering) {
  const auto g = test::random_graph(28, 0.45, 7);
  const auto all = reference_maximal_cliques(g);
  for (std::size_t lo : {2u, 3u}) {
    for (std::size_t hi : {0u, 4u}) {
      KoseOptions options;
      options.range = SizeRange{lo, hi};
      EXPECT_EQ(test::run_kose(g, options),
                filter_by_size(all, options.range))
          << "lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(KoseRam, StatsTrackCostDrivers) {
  const auto g = test::random_graph(25, 0.5, 11);
  CliqueCollector sink;
  KoseOptions options;
  options.range = SizeRange{2, 0};
  const auto stats = kose_ram(g, sink.callback(), options);
  EXPECT_EQ(stats.total_maximal, sink.cliques().size());
  EXPECT_GT(stats.cliques_generated, g.num_edges());
  EXPECT_GT(stats.containment_scans, 0u);
  EXPECT_GT(stats.peak_bytes, 0u);
  EXPECT_FALSE(stats.aborted);
}

TEST(KoseRam, AbortValveTriggers) {
  util::Rng rng(5);
  const auto g = graph::gnp(30, 0.6, rng);
  CliqueCollector sink;
  KoseOptions options;
  options.range = SizeRange{2, 0};
  options.max_stored_cliques = 10;  // far below the real level sizes
  const auto stats = kose_ram(g, sink.callback(), options);
  EXPECT_TRUE(stats.aborted);
}

TEST(KoseRam, StoresEverythingUnlikeCliqueEnumerator) {
  // The baseline materializes every clique of every size — its generated
  // count must dominate the number of maximal cliques by a wide margin on
  // a clique-rich graph.
  util::Rng rng(9);
  const auto planted = graph::planted_clique(40, 10, 0.1, rng);
  CliqueCounter counter;
  KoseOptions options;
  options.range = SizeRange{2, 0};
  const auto stats = kose_ram(planted.graph, counter.callback(), options);
  EXPECT_GT(stats.cliques_generated, 10 * counter.total());
}

class KoseSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {};

TEST_P(KoseSweepTest, MatchesReference) {
  const auto [n, p, seed] = GetParam();
  const auto g = test::random_graph(n, p, static_cast<std::uint64_t>(seed));
  KoseOptions options;
  options.range = SizeRange{2, 0};
  EXPECT_EQ(test::run_kose(g, options),
            test::reference_in_range(g, options.range));
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, KoseSweepTest,
    ::testing::Combine(::testing::Values<std::size_t>(12, 22, 32),
                       ::testing::Values(0.2, 0.4),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace gsb::core

namespace gsb::core {
namespace {

TEST(KoseRam, MemoryDominatesCliqueEnumerator) {
  // The paper's Table 1 narrative: Kose RAM's peak storage dwarfs the
  // Clique Enumerator's candidate sub-lists on clique-rich inputs.
  util::Rng rng(3);
  const auto planted = graph::planted_clique(60, 13, 0.05, rng);
  CliqueCounter kose_sink;
  KoseOptions kose_options;
  kose_options.range = SizeRange{3, 0};
  const auto kose = kose_ram(planted.graph, kose_sink.callback(), kose_options);

  util::MemoryTracker tracker;
  CliqueCounter ce_sink;
  CliqueEnumeratorOptions ce_options;
  ce_options.range = SizeRange{3, 0};
  ce_options.tracker = &tracker;
  enumerate_maximal_cliques(planted.graph, ce_sink.callback(), ce_options);

  EXPECT_EQ(kose_sink.total(), ce_sink.total());
  EXPECT_GT(kose.peak_bytes, tracker.peak());
}

}  // namespace
}  // namespace gsb::core
