// Tests for the DAG job scheduler (par::JobGraph): randomized-DAG
// property tests across thread counts, cycle rejection at submit time,
// deterministic ordered completions, window backpressure, work
// stealing, dynamic spawn, and failure isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "parallel/job_graph.h"
#include "parallel/thread_pool.h"
#include "pipeline/overlap.h"
#include "util/rng.h"

namespace gsb {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

/// One randomized DAG run: N jobs, forward edges sampled by seeded RNG
/// (acyclic by construction), each job folding its prerequisites'
/// values.  Returns the per-job values plus the ordered completion log.
struct DagRun {
  std::vector<std::uint64_t> values;
  std::vector<par::JobId> completion_order;
  /// Global claim sequence per job, for topological-order assertions.
  std::vector<std::uint64_t> sequence;
  par::JobGraphStats stats;
};

DagRun run_random_dag(std::uint64_t seed, std::size_t jobs,
                      std::size_t threads) {
  util::Rng rng(seed);
  std::vector<std::vector<par::JobId>> deps(jobs);
  for (par::JobId to = 1; to < jobs; ++to) {
    for (par::JobId from = 0; from < to; ++from) {
      if (rng.below(100) < 15) deps[to].push_back(from);
    }
  }

  DagRun out;
  out.values.assign(jobs, 0);
  out.sequence.assign(jobs, 0);
  std::atomic<std::uint64_t> clock{0};

  par::ThreadPool pool(threads);
  par::JobGraph::Options options;
  options.ordered = true;
  par::JobGraph graph(&pool, options);
  for (par::JobId id = 0; id < jobs; ++id) {
    par::JobGraph::JobSpec spec;
    spec.deps = deps[id];
    spec.bytes = 8;
    spec.run = [&, id](std::size_t) {
      out.sequence[id] = 1 + clock.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t acc = id * 2654435761u;
      for (par::JobId dep : deps[id]) acc ^= out.values[dep] * 31 + dep;
      out.values[id] = acc;
    };
    spec.complete = [&, id] { out.completion_order.push_back(id); };
    graph.add(std::move(spec));
  }
  graph.run();
  out.stats = graph.stats();
  return out;
}

TEST(JobGraph, RandomDagsDeterministicAcrossThreadCounts) {
  for (std::uint64_t seed : {11u, 42u, 99u}) {
    const std::size_t jobs = 48;
    const DagRun reference = run_random_dag(seed, jobs, 1);
    ASSERT_EQ(reference.completion_order.size(), jobs);
    for (std::size_t threads : kThreadCounts) {
      const DagRun run = run_random_dag(seed, jobs, threads);
      // Identical values and identical completion order: the scheduler
      // preserves the byte-identical-output contract.
      EXPECT_EQ(run.values, reference.values)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(run.completion_order, reference.completion_order)
          << "seed=" << seed << " threads=" << threads;
      // Completions drain strictly in JobId order.
      for (par::JobId id = 0; id < jobs; ++id) {
        EXPECT_EQ(run.completion_order[id], id);
      }
      EXPECT_EQ(run.stats.jobs_run, jobs);
    }
  }
}

TEST(JobGraph, ExecutionRespectsTopologicalOrder) {
  for (std::size_t threads : kThreadCounts) {
    const std::uint64_t seed = 7;
    const std::size_t jobs = 40;
    const DagRun run = run_random_dag(seed, jobs, threads);
    // Rebuild the same edge set and check every job started after all
    // of its prerequisites.
    util::Rng rng(seed);
    for (par::JobId to = 1; to < jobs; ++to) {
      for (par::JobId from = 0; from < to; ++from) {
        if (rng.below(100) < 15) {
          EXPECT_GT(run.sequence[to], run.sequence[from])
              << "threads=" << threads << " edge " << from << "->" << to;
        }
      }
    }
  }
}

TEST(JobGraph, CycleRejectedAtSubmitTime) {
  par::JobGraph graph(nullptr);
  const auto a = graph.add([](std::size_t) {});
  const auto b = graph.add([](std::size_t) {});
  const auto c = graph.add([](std::size_t) {});
  graph.add_edge(a, b);
  graph.add_edge(b, c);
  EXPECT_THROW(graph.add_edge(c, a), std::invalid_argument);
  EXPECT_THROW(graph.add_edge(b, a), std::invalid_argument);
  EXPECT_THROW(graph.add_edge(a, a), std::invalid_argument);
  // The rejected edges left the graph runnable.
  graph.run();
  EXPECT_EQ(graph.stats().jobs_run, 3u);
}

TEST(JobGraph, EdgeEndpointsValidated) {
  par::JobGraph graph(nullptr);
  const auto a = graph.add([](std::size_t) {});
  EXPECT_THROW(graph.add_edge(a, 7), std::invalid_argument);
  EXPECT_THROW(graph.add_edge(7, a), std::invalid_argument);
  par::JobGraph::JobSpec bad;
  bad.run = [](std::size_t) {};
  bad.deps = {9};
  EXPECT_THROW(graph.add(std::move(bad)), std::invalid_argument);
}

TEST(JobGraph, ExceptionFailsGraphWithoutDeadlockingPool) {
  par::ThreadPool pool(4);
  {
    par::JobGraph graph(&pool);
    std::atomic<int> ran{0};
    const auto boom = graph.add([](std::size_t) {
      throw std::runtime_error("job failed");
    });
    // A long chain behind the failing job: none of it may run.
    par::JobId prev = boom;
    for (int i = 0; i < 16; ++i) {
      par::JobGraph::JobSpec spec;
      spec.run = [&](std::size_t) { ++ran; };
      spec.deps = {prev};
      prev = graph.add(std::move(spec));
    }
    EXPECT_THROW(graph.run(), std::runtime_error);
    EXPECT_EQ(ran.load(), 0);
  }
  // The pool survives a failed graph and still runs rounds.
  std::atomic<int> hits{0};
  pool.run_round([&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 4);
}

TEST(JobGraph, ExceptionSkipsOrderedCompletions) {
  par::JobGraph::Options options;
  options.ordered = true;
  par::ThreadPool pool(2);
  par::JobGraph graph(&pool, options);
  std::atomic<int> completes{0};
  for (int i = 0; i < 8; ++i) {
    par::JobGraph::JobSpec spec;
    spec.run = [i](std::size_t) {
      if (i == 3) throw std::logic_error("mid-graph failure");
    };
    spec.complete = [&] { ++completes; };
    graph.add(std::move(spec));
  }
  EXPECT_THROW(graph.run(), std::logic_error);
  // Completions stop at the failure; later jobs may have finished
  // bodies but never drain once the graph has failed.
  EXPECT_LE(completes.load(), 7);
}

TEST(JobGraph, WindowBackpressureBoundsReorderBuffer) {
  constexpr std::size_t kJobs = 64;
  constexpr std::size_t kBytesPerJob = 64;
  par::JobGraph::Options options;
  options.ordered = true;
  options.window_bytes = 2 * kBytesPerJob;
  par::ThreadPool pool(4);
  par::JobGraph graph(&pool, options);
  std::vector<par::JobId> order;
  for (std::size_t i = 0; i < kJobs; ++i) {
    par::JobGraph::JobSpec spec;
    spec.bytes = kBytesPerJob;
    spec.run = [](std::size_t) {};
    spec.complete = [&order, i] { order.push_back(static_cast<par::JobId>(i)); };
    graph.add(std::move(spec));
  }
  graph.run();
  ASSERT_EQ(order.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(order[i], i);
  // The window admits at most window_bytes of finished-but-undrained
  // output plus the jobs already running when it filled (one per
  // worker can still land after the gate closes).
  EXPECT_LE(graph.stats().peak_pending_bytes,
            options.window_bytes + pool.size() * kBytesPerJob);
  EXPECT_GT(graph.stats().peak_pending_bytes, 0u);
}

TEST(JobGraph, WorkStealingFromHomeQueues) {
  constexpr std::size_t kWorkers = 4;
  par::ThreadPool pool(kWorkers);
  par::JobGraph graph(&pool);
  // Everything homed to worker 0; a rendezvous forces all four workers
  // to hold one job at once, so three of them must have stolen.
  std::atomic<std::size_t> arrivals{0};
  for (std::size_t i = 0; i < kWorkers; ++i) {
    par::JobGraph::JobSpec spec;
    spec.home = 0;
    spec.run = [&](std::size_t) {
      arrivals.fetch_add(1);
      while (arrivals.load() < kWorkers) std::this_thread::yield();
    };
    graph.add(std::move(spec));
  }
  graph.run();
  EXPECT_EQ(graph.stats().jobs_run, kWorkers);
  EXPECT_GE(graph.stats().jobs_stolen, kWorkers - 1);
}

TEST(JobGraph, DynamicSpawnFromRunningJob) {
  par::ThreadPool pool(2);
  par::JobGraph graph(&pool);
  std::atomic<int> ran{0};
  const auto root = graph.add([&](std::size_t) {
    ++ran;
    for (int i = 0; i < 5; ++i) {
      graph.add([&](std::size_t) { ++ran; });
    }
  });
  (void)root;
  graph.run();
  EXPECT_EQ(ran.load(), 6);
  EXPECT_EQ(graph.stats().jobs_run, 6u);
}

TEST(JobGraph, DepOnFinishedJobIsSatisfied) {
  par::JobGraph graph(nullptr);
  std::vector<int> log;
  const auto first = graph.add([&](std::size_t) {
    log.push_back(1);
    // By the time this body runs, no dep bookkeeping remains for job 0:
    // the new job's dep is already finished... except job 0 *is* the
    // running job, so the spawned job waits for it.
    par::JobGraph::JobSpec spec;
    spec.run = [&](std::size_t) { log.push_back(2); };
    graph.add(std::move(spec));
  });
  (void)first;
  graph.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(JobGraph, TypedValueEdgePassesData) {
  par::ThreadPool pool(2);
  par::JobGraph graph(&pool);
  par::JobValue<std::string> greeting;
  std::string got;
  const auto producer = graph.add([greeting](std::size_t) {
    greeting.set("forty-two");
  });
  par::JobGraph::JobSpec consumer;
  consumer.deps = {producer};
  consumer.run = [greeting, &got](std::size_t) { got = greeting.get(); };
  graph.add(std::move(consumer));
  graph.run();
  EXPECT_EQ(got, "forty-two");
}

TEST(JobGraph, InlineExecutionWithoutPool) {
  par::JobGraph graph(nullptr);
  EXPECT_EQ(graph.workers(), 1u);
  std::vector<std::size_t> ids;
  for (int i = 0; i < 4; ++i) {
    graph.add([&](std::size_t worker) { ids.push_back(worker); });
  }
  graph.run();
  EXPECT_EQ(ids, (std::vector<std::size_t>{0, 0, 0, 0}));
}

TEST(JobGraph, WorkerLimitCapsParticipation) {
  par::ThreadPool pool(8);
  par::JobGraph::Options options;
  options.worker_limit = 2;
  par::JobGraph graph(&pool, options);
  EXPECT_EQ(graph.workers(), 2u);
  std::atomic<std::uint32_t> mask{0};
  for (int i = 0; i < 32; ++i) {
    graph.add([&](std::size_t worker) {
      mask.fetch_or(1u << worker);
    });
  }
  graph.run();
  EXPECT_EQ(mask.load() & ~0x3u, 0u);  // only workers 0 and 1 ran jobs
}

TEST(JobGraph, SingleShotLifecycle) {
  par::JobGraph graph(nullptr);
  graph.add([](std::size_t) {});
  graph.run();
  EXPECT_THROW(graph.run(), std::logic_error);
  EXPECT_THROW(graph.add([](std::size_t) {}), std::logic_error);
  EXPECT_THROW(graph.add_edge(0, 0), std::logic_error);
}

TEST(JobGraph, EmptyGraphRunsToCompletion) {
  par::JobGraph graph(nullptr);
  graph.run();
  EXPECT_EQ(graph.stats().jobs_run, 0u);
}

TEST(JobGraph, MissingBodyRejected) {
  par::JobGraph graph(nullptr);
  par::JobGraph::JobSpec empty;
  EXPECT_THROW(graph.add(std::move(empty)), std::invalid_argument);
}

TEST(JobGraph, UnorderedCompleteRunsInline) {
  par::JobGraph graph(nullptr);
  std::vector<int> log;
  par::JobGraph::JobSpec spec;
  spec.run = [&](std::size_t) { log.push_back(1); };
  spec.complete = [&] { log.push_back(2); };
  graph.add(std::move(spec));
  graph.add([&](std::size_t) { log.push_back(3); });
  graph.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(JobGraph, PublishesSchedulerMetrics) {
  auto& registry = obs::MetricsRegistry::global();
  registry.reset();
  registry.set_enabled(true);
  {
    par::ThreadPool pool(2);
    par::JobGraph::Options options;
    options.ordered = true;
    par::JobGraph graph(&pool, options);
    for (int i = 0; i < 12; ++i) {
      par::JobGraph::JobSpec spec;
      spec.bytes = 16;
      spec.run = [](std::size_t) {};
      spec.complete = [] {};
      graph.add(std::move(spec));
    }
    graph.run();
  }
  const auto snapshot = registry.scrape();
  registry.set_enabled(false);
  std::uint64_t jobs_total = 0;
  bool saw_wait_histogram = false;
  bool saw_pending_gauge = false;
  for (const auto& metric : snapshot.metrics) {
    if (metric.name == "gsb_sched_jobs_total") jobs_total = metric.value;
    if (metric.name == "gsb_sched_queue_wait_micros") {
      saw_wait_histogram = metric.histogram.count >= 12;
    }
    if (metric.name == "gsb_sched_pending_peak_bytes") {
      saw_pending_gauge = true;
    }
  }
  registry.reset();
  EXPECT_GE(jobs_total, 12u);
  EXPECT_TRUE(saw_wait_histogram);
  EXPECT_TRUE(saw_pending_gauge);
}

TEST(JobGraph, TimelineRecordsLabeledJobSpans) {
  obs::TimelineJournal& journal = obs::TimelineJournal::global();
  journal.reset();
  journal.set_enabled(true);
  {
    par::ThreadPool pool(2);
    par::JobGraph graph(&pool);
    par::JobGraph::JobSpec first;
    first.label = "stage-a";
    first.run = [](std::size_t) {};
    const par::JobId a = graph.add(std::move(first));
    par::JobGraph::JobSpec second;
    second.label = "stage-b";
    second.deps = {a};
    second.run = [](std::size_t) {};
    graph.add(std::move(second));
    graph.run();
  }
  journal.set_enabled(false);
  const obs::TimelineSnapshot snapshot = journal.snapshot();
  journal.reset();
  bool saw_a = false;
  bool saw_b = false;
  std::size_t queue_waits = 0;
  for (const obs::TimelineEvent& event : snapshot.events) {
    if (event.kind == obs::TimelineEventKind::kJob) {
      if (std::string(event.label) == "stage-a") saw_a = true;
      if (std::string(event.label) == "stage-b") saw_b = true;
    }
    if (event.kind == obs::TimelineEventKind::kQueueWait) ++queue_waits;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  EXPECT_EQ(queue_waits, 2u);  // one ready->claimed span per job
  bool named_worker_lane = false;
  for (const obs::TimelineLane& lane : snapshot.lanes) {
    if (lane.name.rfind("worker-", 0) == 0) named_worker_lane = true;
  }
  EXPECT_TRUE(named_worker_lane);
}

TEST(JobGraph, TimelineOnOffKeepsGsbcEmissionByteIdentical) {
  namespace fs = std::filesystem;
  const std::string on_path =
      (fs::temp_directory_path() / "gsb_sched_timeline_on.gsbc").string();
  const std::string off_path =
      (fs::temp_directory_path() / "gsb_sched_timeline_off.gsbc").string();
  util::Rng rng(7);
  const graph::Graph g = graph::gnp(80, 0.25, rng);
  const auto run_pipeline = [&g](const std::string& path) {
    pipeline::AnalysisOptions analysis;
    analysis.range = core::SizeRange{3, 0};
    analysis.threads = 1;  // deterministic emission order
    analysis.overlap = true;
    analysis.clique_out = path;
    pipeline::run_analysis(g, analysis);
  };
  obs::TimelineJournal& journal = obs::TimelineJournal::global();
  journal.reset();
  journal.set_enabled(true);
  run_pipeline(on_path);
  journal.set_enabled(false);
  const obs::TimelineSnapshot traced = journal.snapshot();
  journal.reset();
  run_pipeline(off_path);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  const std::string with_timeline = slurp(on_path);
  ASSERT_FALSE(with_timeline.empty());
  EXPECT_EQ(with_timeline, slurp(off_path));
  EXPECT_FALSE(traced.events.empty());  // recording actually happened
  fs::remove(on_path);
  fs::remove(off_path);
}

}  // namespace
}  // namespace gsb
