// Tests for the FPT vertex-cover machinery (§2.1) and the complement-graph
// maximum-clique route.

#include <gtest/gtest.h>

#include "core/maximum_clique.h"
#include "core/verify.h"
#include "fpt/feedback_vertex_set.h"
#include "fpt/max_clique_vc.h"
#include "fpt/vertex_cover.h"
#include "graph/generators.h"
#include "graph/transforms.h"
#include "tests/test_helpers.h"

namespace gsb::fpt {
namespace {

bool covers_all_edges(const graph::Graph& g,
                      const std::vector<VertexId>& cover) {
  std::vector<bool> in_cover(g.order(), false);
  for (VertexId v : cover) {
    if (v >= g.order()) return false;
    in_cover[v] = true;
  }
  for (const auto& [u, v] : g.edge_list()) {
    if (!in_cover[u] && !in_cover[v]) return false;
  }
  return true;
}

/// Brute-force minimum vertex cover for n <= 20.
std::size_t brute_force_vc(const graph::Graph& g) {
  const std::size_t n = g.order();
  const auto edges = g.edge_list();
  std::size_t best = n;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const auto size = static_cast<std::size_t>(__builtin_popcount(mask));
    if (size >= best) continue;
    bool ok = true;
    for (const auto& [u, v] : edges) {
      if (!(mask & (1u << u)) && !(mask & (1u << v))) {
        ok = false;
        break;
      }
    }
    if (ok) best = size;
  }
  return best;
}

TEST(VertexCover, PathAndCycle) {
  // Path on 5 vertices: tau = 2.  Cycle on 5: tau = 3.
  graph::Graph path(5);
  for (VertexId v = 0; v + 1 < 5; ++v) path.add_edge(v, v + 1);
  EXPECT_FALSE(vertex_cover_decide(path, 1).feasible);
  EXPECT_TRUE(vertex_cover_decide(path, 2).feasible);
  EXPECT_EQ(minimum_vertex_cover(path).cover.size(), 2u);

  graph::Graph cycle = path;
  cycle.add_edge(4, 0);
  EXPECT_FALSE(vertex_cover_decide(cycle, 2).feasible);
  EXPECT_TRUE(vertex_cover_decide(cycle, 3).feasible);
  EXPECT_EQ(minimum_vertex_cover(cycle).cover.size(), 3u);
}

TEST(VertexCover, StarIsPendantKernelized) {
  graph::Graph star(9);
  for (VertexId v = 1; v < 9; ++v) star.add_edge(0, v);
  const auto result = vertex_cover_decide(star, 1);
  EXPECT_TRUE(result.feasible);
  ASSERT_EQ(result.cover.size(), 1u);
  EXPECT_EQ(result.cover[0], 0u);
  EXPECT_GT(result.kernel_removals, 0u);
}

TEST(VertexCover, CompleteGraphNeedsAllButOne) {
  util::Rng rng(1);
  const auto k6 = graph::gnp(6, 1.0, rng);
  EXPECT_FALSE(vertex_cover_decide(k6, 4).feasible);
  EXPECT_TRUE(vertex_cover_decide(k6, 5).feasible);
}

TEST(VertexCover, WitnessAlwaysCovers) {
  for (int seed = 1; seed <= 5; ++seed) {
    const auto g = test::random_graph(18, 0.3, seed);
    const auto result = minimum_vertex_cover(g);
    EXPECT_TRUE(covers_all_edges(g, result.cover)) << "seed " << seed;
  }
}

TEST(VertexCover, EmptyAndEdgeless) {
  const graph::Graph empty(0);
  EXPECT_TRUE(vertex_cover_decide(empty, 0).feasible);
  const graph::Graph isolated(5);
  const auto result = vertex_cover_decide(isolated, 0);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.cover.empty());
}

TEST(VertexCover, DecisionMonotoneInK) {
  const auto g = test::random_graph(16, 0.4, 9);
  const std::size_t tau = brute_force_vc(g);
  for (std::size_t k = 0; k <= g.order(); ++k) {
    EXPECT_EQ(vertex_cover_decide(g, k).feasible, k >= tau) << "k=" << k;
  }
}

TEST(VertexCover, NodeBudgetAborts) {
  util::Rng rng(13);
  const auto g = graph::gnp(40, 0.5, rng);
  VertexCoverOptions options;
  options.max_nodes = 10;
  options.use_kernelization = false;
  // k large enough that the edge-count bound cannot settle the question in
  // the first few nodes, so the search must exceed the tiny budget.
  const auto result = vertex_cover_decide(g, 20, options);
  EXPECT_TRUE(result.aborted);
}

TEST(VertexCover, BoundsAreBounds) {
  const auto g = test::random_graph(18, 0.35, 21);
  const std::size_t tau = brute_force_vc(g);
  EXPECT_LE(matching_lower_bound(g), tau);
  const auto greedy = greedy_cover(g);
  EXPECT_TRUE(covers_all_edges(g, greedy));
  EXPECT_GE(greedy.size(), tau);
  EXPECT_LE(greedy.size(), 2 * tau);
}

class VcConfigTest : public ::testing::TestWithParam<
                         std::tuple<bool, bool, std::size_t, int>> {};

TEST_P(VcConfigTest, AllConfigsMatchBruteForce) {
  const auto [kernel, folding, n, seed] = GetParam();
  const auto g = test::random_graph(n, 0.35, static_cast<std::uint64_t>(seed));
  VertexCoverOptions options;
  options.use_kernelization = kernel;
  options.use_folding = folding;
  const auto result = minimum_vertex_cover(g, options);
  EXPECT_EQ(result.cover.size(), brute_force_vc(g));
  EXPECT_TRUE(covers_all_edges(g, result.cover));
}

INSTANTIATE_TEST_SUITE_P(
    RuleAblation, VcConfigTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values<std::size_t>(12, 16),
                       ::testing::Values(1, 2, 3)));

TEST(MaxCliqueVc, GallaiIdentityHolds) {
  // tau(complement) = n - omega(G).
  for (int seed = 1; seed <= 4; ++seed) {
    const auto g = test::random_graph(16, 0.5, seed);
    const auto omega = core::maximum_clique(g).clique.size();
    const auto tau = minimum_vertex_cover(graph::complement(g)).cover.size();
    EXPECT_EQ(tau, g.order() - omega) << "seed " << seed;
  }
}

TEST(MaxCliqueVc, FindsMaximumClique) {
  for (int seed = 1; seed <= 4; ++seed) {
    const auto g = test::random_graph(18, 0.55, seed);
    const auto via_vc = maximum_clique_via_vertex_cover(g);
    EXPECT_TRUE(core::is_clique(g, via_vc.clique));
    EXPECT_EQ(via_vc.clique.size(), core::maximum_clique(g).clique.size());
  }
}

TEST(MaxCliqueVc, DecisionBoundaries) {
  util::Rng rng(31);
  const auto planted = graph::planted_clique(60, 14, 0.08, rng);
  EXPECT_TRUE(has_clique_of_size(planted.graph, 14));
  EXPECT_TRUE(has_clique_of_size(planted.graph, 0));
  EXPECT_FALSE(has_clique_of_size(planted.graph, 61));
}

TEST(MaxCliqueVc, DenseCompatibilityGraphIsEasy) {
  // The intended use case: a dense graph whose complement is sparse, so the
  // VC parameter n - omega is small.
  util::Rng rng(41);
  graph::Graph g = graph::gnp(70, 0.97, rng);
  const auto result = maximum_clique_via_vertex_cover(g);
  EXPECT_TRUE(core::is_clique(g, result.clique));
  EXPECT_GE(result.clique.size(), 40u);
}

}  // namespace
}  // namespace gsb::fpt

namespace gsb::fpt {
namespace {

/// Brute-force minimum FVS for n <= 18.
std::size_t brute_force_fvs(const graph::Graph& g) {
  const std::size_t n = g.order();
  std::size_t best = n;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const auto size = static_cast<std::size_t>(__builtin_popcount(mask));
    if (size >= best) continue;
    std::vector<VertexId> fvs;
    for (std::uint32_t rest = mask; rest != 0; rest &= rest - 1) {
      fvs.push_back(static_cast<VertexId>(__builtin_ctz(rest)));
    }
    if (is_feedback_vertex_set(g, fvs)) best = size;
  }
  return best;
}

TEST(FeedbackVertexSet, KnownSmallGraphs) {
  // A tree needs nothing.
  graph::Graph tree(5);
  tree.add_edge(0, 1);
  tree.add_edge(0, 2);
  tree.add_edge(2, 3);
  tree.add_edge(2, 4);
  EXPECT_TRUE(feedback_vertex_set_decide(tree, 0).feasible);
  EXPECT_TRUE(minimum_feedback_vertex_set(tree).fvs.empty());

  // A cycle needs exactly one vertex.
  graph::Graph cycle(5);
  for (VertexId v = 0; v < 5; ++v) cycle.add_edge(v, (v + 1) % 5);
  EXPECT_FALSE(feedback_vertex_set_decide(cycle, 0).feasible);
  const auto one = feedback_vertex_set_decide(cycle, 1);
  EXPECT_TRUE(one.feasible);
  EXPECT_TRUE(is_feedback_vertex_set(cycle, one.fvs));

  // K4 needs two.
  util::Rng rng(1);
  const auto k4 = graph::gnp(4, 1.0, rng);
  EXPECT_FALSE(feedback_vertex_set_decide(k4, 1).feasible);
  EXPECT_TRUE(feedback_vertex_set_decide(k4, 2).feasible);
  EXPECT_EQ(minimum_feedback_vertex_set(k4).fvs.size(), 2u);
}

TEST(FeedbackVertexSet, IsFvsValidator) {
  graph::Graph cycle(4);
  for (VertexId v = 0; v < 4; ++v) cycle.add_edge(v, (v + 1) % 4);
  EXPECT_FALSE(is_feedback_vertex_set(cycle, {}));
  EXPECT_TRUE(is_feedback_vertex_set(cycle, {0}));
  EXPECT_FALSE(is_feedback_vertex_set(cycle, {9}));  // out of range
}

TEST(FeedbackVertexSet, NodeBudgetAborts) {
  util::Rng rng(5);
  const auto g = graph::gnp(30, 0.4, rng);
  FeedbackVertexSetOptions options;
  options.max_nodes = 3;
  const auto result = feedback_vertex_set_decide(g, 2, options);
  EXPECT_TRUE(result.aborted);
}

class FvsSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {};

TEST_P(FvsSweepTest, MatchesBruteForce) {
  const auto [n, p, seed] = GetParam();
  const auto g = test::random_graph(n, p, static_cast<std::uint64_t>(seed));
  const auto result = minimum_feedback_vertex_set(g);
  EXPECT_TRUE(is_feedback_vertex_set(g, result.fvs));
  EXPECT_EQ(result.fvs.size(), brute_force_fvs(g));
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, FvsSweepTest,
    ::testing::Combine(::testing::Values<std::size_t>(8, 12, 15),
                       ::testing::Values(0.15, 0.3, 0.5),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace gsb::fpt
