// Tests for the shared blocked correlation kernel: the blocked block
// product must be bit-identical to the scalar profile_dot reference on
// randomized inputs, the sweep drivers must emit the same edge sequence at
// every thread count and block size, the in-memory builder's graph must be
// invariant under --threads, and the tiled builder's .gsbg output must be
// byte-identical across thread counts — for Pearson and Spearman alike.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "bio/corr_kernel.h"
#include "bio/correlation.h"
#include "bio/generator.h"
#include "bio/normalize.h"
#include "bio/tiled_correlation.h"
#include "parallel/thread_pool.h"
#include "storage/mapped_graph.h"
#include "util/rng.h"

namespace gsb {
namespace {

namespace fs = std::filesystem;

class TempPath {
 public:
  explicit TempPath(const std::string& stem) {
    static int counter = 0;
    path_ = (fs::temp_directory_path() /
             (stem + "_" + std::to_string(counter++) + ".gsbg"))
                .string();
  }
  ~TempPath() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

std::vector<char> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

bio::ExpressionMatrix synthetic_expression(std::size_t genes,
                                           std::size_t samples,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  bio::MicroarrayConfig config;
  config.genes = genes;
  config.samples = samples;
  config.modules = genes / 40 + 1;
  auto data = bio::generate_microarray(config, rng);
  bio::quantile_normalize(data.expression);
  return std::move(data.expression);
}

using Edge = std::tuple<std::uint32_t, std::uint32_t, double>;

std::vector<Edge> sweep_edges(const bio::StandardizedRows& rows,
                              std::size_t count, double threshold,
                              std::size_t block, par::ThreadPool* pool) {
  bio::CorrSweepOptions options;
  options.block = block;
  options.pool = pool;
  std::vector<Edge> edges;
  bio::correlation_self(rows.rows, count, rows.valid.data(), threshold,
                        options,
                        [&](std::uint32_t u, std::uint32_t v, double corr) {
                          edges.emplace_back(u, v, corr);
                        });
  return edges;
}

TEST(CorrKernel, BlockedBlockMatchesScalarDotBitwise) {
  util::Rng rng(99);
  std::vector<double> out;
  std::vector<double> scratch;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t a_count = 1 + static_cast<std::size_t>(rng.below(21));
    const std::size_t b_count = 1 + static_cast<std::size_t>(rng.below(27));
    const std::size_t samples = 1 + static_cast<std::size_t>(rng.below(70));
    bio::AlignedRows a(a_count, samples);
    bio::AlignedRows b(b_count, samples);
    EXPECT_EQ(a.stride() % bio::AlignedRows::kAlignDoubles, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.row(0)) %
                  bio::AlignedRows::kAlignment,
              0u);
    for (std::size_t i = 0; i < a_count; ++i) {
      for (std::size_t k = 0; k < samples; ++k) a.row(i)[k] = rng.normal();
    }
    for (std::size_t j = 0; j < b_count; ++j) {
      for (std::size_t k = 0; k < samples; ++k) b.row(j)[k] = rng.normal();
    }
    out.assign(a_count * b_count, 0.0);
    bio::correlation_block(a.row(0), a_count, b.row(0), b_count, samples,
                           a.stride(), b.stride(), out.data(), b_count,
                           scratch);
    for (std::size_t i = 0; i < a_count; ++i) {
      for (std::size_t j = 0; j < b_count; ++j) {
        const double reference =
            bio::profile_dot(a.row(i), b.row(j), samples);
        // Exact equality: the kernel accumulates every pair in the scalar
        // reference order, so not even the last ulp may differ.
        EXPECT_EQ(out[i * b_count + j], reference)
            << "trial " << trial << " pair (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(CorrKernel, SweepSequenceInvariantAcrossThreadsAndBlocks) {
  const auto expression = synthetic_expression(150, 24, 31);
  for (const auto method : {bio::CorrelationMethod::kPearson,
                            bio::CorrelationMethod::kSpearman}) {
    const auto rows = bio::standardize_rows(expression, method);
    const std::size_t n = expression.genes();
    for (const double threshold : {0.5, 0.7, 0.85}) {
      // Scalar reference: plain double loop over the upper triangle.
      std::vector<Edge> reference;
      for (std::size_t i = 0; i < n; ++i) {
        if (rows.valid[i] == 0) continue;
        for (std::size_t j = i + 1; j < n; ++j) {
          if (rows.valid[j] == 0) continue;
          const double corr = bio::profile_dot(
              rows.rows.row(i), rows.rows.row(j), expression.samples());
          if (std::fabs(corr) >= threshold) {
            reference.emplace_back(static_cast<std::uint32_t>(i),
                                   static_cast<std::uint32_t>(j), corr);
          }
        }
      }
      ASSERT_FALSE(reference.empty());

      const auto baseline = sweep_edges(rows, n, threshold, 32, nullptr);
      // Same pairs and bit-identical correlations as the scalar loop
      // (emission order differs: block pairs vs rows).
      auto sorted = baseline;
      std::sort(sorted.begin(), sorted.end());
      auto expected = reference;
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(sorted, expected);

      for (const std::size_t threads : {2u, 4u, 8u}) {
        par::ThreadPool pool(threads);
        EXPECT_EQ(sweep_edges(rows, n, threshold, 32, &pool), baseline)
            << threads << " threads";
      }
      for (const std::size_t block : {8u, 64u, 1024u}) {
        auto other = sweep_edges(rows, n, threshold, block, nullptr);
        std::sort(other.begin(), other.end());
        EXPECT_EQ(other, expected) << "block " << block;
      }
    }
  }
}

TEST(CorrKernel, InMemoryGraphInvariantAcrossThreadCounts) {
  const auto expression = synthetic_expression(160, 20, 47);
  for (const auto method : {bio::CorrelationMethod::kPearson,
                            bio::CorrelationMethod::kSpearman}) {
    bio::CorrelationGraphOptions options;
    options.method = method;
    options.threshold = 0.6;
    options.threads = 1;
    util::Rng rng(1);
    const auto baseline =
        bio::build_correlation_graph(expression, options, rng);
    EXPECT_GT(baseline.graph.num_edges(), 0u);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      options.threads = threads;
      options.corr_block = 16;  // force many blocks per round
      util::Rng thread_rng(1);
      const auto built =
          bio::build_correlation_graph(expression, options, thread_rng);
      EXPECT_TRUE(built.graph == baseline.graph)
          << threads << " threads, method "
          << (method == bio::CorrelationMethod::kPearson ? "pearson"
                                                         : "spearman");
    }
  }
}

TEST(CorrKernel, TiledGsbgByteIdenticalAcrossThreadCounts) {
  const auto expression = synthetic_expression(200, 24, 53);
  for (const auto method : {bio::CorrelationMethod::kPearson,
                            bio::CorrelationMethod::kSpearman}) {
    bio::TiledCorrelationOptions options;
    options.method = method;
    options.threshold = 0.6;
    options.tile_rows = 48;   // multi-tile sweep with a ragged tail
    options.block_rows = 16;  // multiple blocks per tile pair
    options.threads = 1;
    TempPath baseline_path("corr_threads1");
    bio::build_correlation_gsbg(expression, baseline_path.path(), options);
    const auto baseline_bytes = read_file_bytes(baseline_path.path());
    ASSERT_FALSE(baseline_bytes.empty());

    for (const std::size_t threads : {2u, 4u, 8u}) {
      options.threads = threads;
      TempPath path("corr_threadsN");
      bio::build_correlation_gsbg(expression, path.path(), options);
      EXPECT_EQ(read_file_bytes(path.path()), baseline_bytes)
          << threads << " threads";
    }

    // And the mapped edge set equals the in-memory builder's graph.
    bio::CorrelationGraphOptions in_memory;
    in_memory.method = method;
    in_memory.threshold = 0.6;
    in_memory.threads = 4;
    util::Rng rng(1);
    const auto expected =
        bio::build_correlation_graph(expression, in_memory, rng);
    const auto mapped = storage::MappedGraph::open(baseline_path.path());
    EXPECT_TRUE(mapped.load() == expected.graph);
  }
}

TEST(CorrKernel, CorrelationMatrixThreadedMatchesSequential) {
  // > 2 x kDefaultCorrBlock genes so the threaded branch really runs
  // multiple block-pair tasks (a single task falls back to sequential).
  const auto expression = synthetic_expression(300, 16, 61);
  const auto sequential = bio::correlation_matrix(
      expression, bio::CorrelationMethod::kSpearman, 1);
  const auto threaded = bio::correlation_matrix(
      expression, bio::CorrelationMethod::kSpearman, 4);
  ASSERT_EQ(sequential.size(), threaded.size());
  const auto rows =
      bio::standardize_rows(expression, bio::CorrelationMethod::kSpearman);
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_FLOAT_EQ(sequential.at(i, i), 1.0f);
    for (std::size_t j = 0; j < sequential.size(); ++j) {
      EXPECT_EQ(sequential.at(i, j), threaded.at(i, j));
      if (j > i) {
        const float reference = static_cast<float>(bio::profile_dot(
            rows.rows.row(i), rows.rows.row(j), expression.samples()));
        EXPECT_EQ(sequential.at(i, j), reference);
        EXPECT_EQ(sequential.at(j, i), reference);
      }
    }
  }
}

}  // namespace
}  // namespace gsb
