// The core correctness suite: the paper's Clique Enumerator must produce
// exactly the maximal cliques (within its size window) that the independent
// references produce, in non-decreasing size order, while its level
// statistics and memory accounting stay consistent.

#include <gtest/gtest.h>

#include "core/clique_enumerator.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "tests/test_helpers.h"

namespace gsb::core {
namespace {

TEST(CliqueEnumerator, TriangleWithPendantFromK2) {
  const auto g = graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  CliqueEnumeratorOptions options;
  options.range = SizeRange{2, 0};
  const auto got = test::run_clique_enumerator(g, options);
  EXPECT_EQ(got, test::reference_in_range(g, options.range));
}

TEST(CliqueEnumerator, IsolatedVerticesRequireLowerBoundOne) {
  graph::Graph g(5);
  g.add_edge(0, 1);
  // lo = 1: singletons {2},{3},{4} plus the edge {0,1}.
  CliqueEnumeratorOptions lo1;
  lo1.range = SizeRange{1, 0};
  const auto all = test::run_clique_enumerator(g, lo1);
  EXPECT_EQ(all, reference_maximal_cliques(g));
  // lo = 2: only the edge.
  CliqueEnumeratorOptions lo2;
  lo2.range = SizeRange{2, 0};
  const auto edges_only = test::run_clique_enumerator(g, lo2);
  ASSERT_EQ(edges_only.size(), 1u);
  EXPECT_EQ(edges_only[0], (Clique{0, 1}));
}

TEST(CliqueEnumerator, NonDecreasingEmissionOrder) {
  const auto g = test::random_graph(40, 0.35, 5);
  std::size_t last = 0;
  CliqueEnumeratorOptions options;
  options.range = SizeRange{2, 0};
  enumerate_maximal_cliques(g,
                            [&](std::span<const VertexId> clique) {
                              EXPECT_GE(clique.size(), last);
                              last = clique.size();
                            },
                            options);
  EXPECT_GT(last, 0u);
}

TEST(CliqueEnumerator, UpperBoundStopsEnumeration) {
  const auto g = test::random_graph(35, 0.45, 9);
  const auto all = reference_maximal_cliques(g);
  for (std::size_t hi = 2; hi <= 6; ++hi) {
    CliqueEnumeratorOptions options;
    options.range = SizeRange{2, hi};
    const auto got = test::run_clique_enumerator(g, options);
    EXPECT_EQ(got, filter_by_size(all, options.range)) << "hi=" << hi;
  }
}

TEST(CliqueEnumerator, WindowEntirelyBelowSeedIsEmptyButSafe) {
  const auto g = test::random_graph(20, 0.3, 13);
  CliqueEnumeratorOptions options;
  options.range = SizeRange{1, 1};
  const auto got = test::run_clique_enumerator(g, options);
  // Only isolated vertices qualify; this instance has none.
  EXPECT_TRUE(got.empty());
}

TEST(CliqueEnumerator, KcoreOnOffEquivalent) {
  const auto g = test::random_graph(50, 0.25, 21);
  CliqueEnumeratorOptions with_core;
  with_core.range = SizeRange{3, 0};
  with_core.use_kcore = true;
  CliqueEnumeratorOptions without_core = with_core;
  without_core.use_kcore = false;
  EXPECT_EQ(test::run_clique_enumerator(g, with_core),
            test::run_clique_enumerator(g, without_core));
}

TEST(CliqueEnumerator, ModuleGraphWithHigherInitK) {
  util::Rng rng(31);
  graph::ModuleGraphConfig config;
  config.n = 150;
  config.num_modules = 12;
  config.max_module_size = 14;
  config.overlap = 0.35;
  config.background_edges = 120;
  const auto mg = graph::planted_modules(config, rng);
  const auto all = test::run_base_bk(mg.graph);
  for (std::size_t lo : {3u, 6u, 9u}) {
    CliqueEnumeratorOptions options;
    options.range = SizeRange{lo, 0};
    const auto got = test::run_clique_enumerator(mg.graph, options);
    EXPECT_EQ(got, filter_by_size(all, options.range)) << "lo=" << lo;
  }
}

void stats_consistency_check(const EnumerationStats& stats) {
  std::uint64_t emitted_in_levels = 0;
  for (const auto& level : stats.levels) {
    emitted_in_levels += level.maximal_emitted;
  }
  EXPECT_LE(emitted_in_levels, stats.total_maximal);
  EXPECT_GE(stats.peak_bytes_formula, 1u);
}

TEST(CliqueEnumerator, StatsAreConsistent) {
  const auto g = test::random_graph(45, 0.35, 3);
  CliqueCollector sink;
  CliqueEnumeratorOptions options;
  options.range = SizeRange{3, 0};
  const auto stats = enumerate_maximal_cliques(g, sink.callback(), options);
  EXPECT_EQ(stats.total_maximal, sink.cliques().size());
  EXPECT_GT(stats.total_seconds, 0.0);
  std::size_t expect_k = 3;
  for (const auto& level : stats.levels) {
    EXPECT_EQ(level.k, expect_k++);
    EXPECT_GT(level.sublists, 0u);
    EXPECT_GE(level.candidates, 2 * level.sublists);  // >=2 tails per sub-list
    EXPECT_GT(level.bytes_formula, 0u);
    EXPECT_GT(level.bytes_actual, 0u);
    EXPECT_GE(level.pairs_checked, level.edges_present);
  }
  stats_consistency_check(stats);
}

TEST(CliqueEnumerator, MemoryAccountingBalances) {
  util::MemoryTracker tracker;
  const auto g = test::random_graph(40, 0.4, 27);
  CliqueCollector sink;
  CliqueEnumeratorOptions options;
  options.range = SizeRange{3, 0};
  options.tracker = &tracker;
  enumerate_maximal_cliques(g, sink.callback(), options);
  EXPECT_EQ(tracker.current(util::MemTag::kCliqueStorage), 0u)
      << "all sub-lists must be released";
  EXPECT_GT(tracker.peak(), 0u);
}

TEST(CliqueEnumerator, MemoryAccountingBalancesWithUpperBound) {
  util::MemoryTracker tracker;
  const auto g = test::random_graph(40, 0.45, 29);
  CliqueCollector sink;
  CliqueEnumeratorOptions options;
  options.range = SizeRange{3, 4};  // leaves live candidates at the cutoff
  options.tracker = &tracker;
  enumerate_maximal_cliques(g, sink.callback(), options);
  EXPECT_EQ(tracker.current(util::MemTag::kCliqueStorage), 0u);
}

TEST(CliqueEnumerator, TraceRecordsTaskCosts) {
  const auto g = test::random_graph(40, 0.4, 33);
  CliqueCollector sink;
  CliqueEnumeratorOptions options;
  options.range = SizeRange{3, 0};
  options.record_trace = true;
  const auto stats = enumerate_maximal_cliques(g, sink.callback(), options);
  ASSERT_EQ(stats.traces.size(), stats.levels.size());
  for (std::size_t i = 0; i < stats.traces.size(); ++i) {
    EXPECT_EQ(stats.traces[i].task_work.size(), stats.levels[i].sublists);
    EXPECT_EQ(stats.traces[i].task_seconds.size(), stats.levels[i].sublists);
  }
  EXPECT_FALSE(stats.seed_trace.task_seconds.empty());
}

TEST(CliqueEnumerator, ProgressCallbackFiresPerLevel) {
  const auto g = test::random_graph(30, 0.5, 37);
  CliqueCollector sink;
  CliqueEnumeratorOptions options;
  options.range = SizeRange{3, 0};
  std::size_t callbacks = 0;
  options.progress = [&](const LevelStats&) { ++callbacks; };
  const auto stats = enumerate_maximal_cliques(g, sink.callback(), options);
  EXPECT_EQ(callbacks, stats.levels.size());
}

class EnumeratorSweepTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, double, std::size_t, int>> {};

TEST_P(EnumeratorSweepTest, MatchesReferenceInWindow) {
  const auto [n, p, lo, seed] = GetParam();
  const auto g = test::random_graph(n, p, static_cast<std::uint64_t>(seed));
  CliqueEnumeratorOptions options;
  options.range = SizeRange{lo, 0};
  const auto got = test::run_clique_enumerator(g, options);
  EXPECT_EQ(got, test::reference_in_range(g, options.range));
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, EnumeratorSweepTest,
    ::testing::Combine(::testing::Values<std::size_t>(12, 24, 40, 60),
                       ::testing::Values(0.15, 0.3, 0.5),
                       ::testing::Values<std::size_t>(2, 3, 4),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace gsb::core
