// Tests for the out-of-core storage engine: .gsbg round-trips, corruption
// rejection, and — the load-bearing guarantee — byte-identical clique /
// paraclique results between the in-memory path and the memory-mapped path.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/hubs.h"
#include "analysis/paraclique.h"
#include "core/maximum_clique.h"
#include "graph/graph_view.h"
#include "graph/transforms.h"
#include "storage/gsbg_format.h"
#include "storage/gsbg_writer.h"
#include "storage/mapped_graph.h"
#include "test_helpers.h"

namespace gsb {
namespace {

namespace fs = std::filesystem;

/// Unique scratch file removed at scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    static int counter = 0;
    path_ = (fs::temp_directory_path() /
             (stem + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++) + ".gsbg"))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

void expect_same_adjacency(const graph::GraphView& a,
                           const graph::GraphView& b) {
  ASSERT_EQ(a.order(), b.order());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (graph::VertexId v = 0; v < a.order(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v)) << "degree mismatch at " << v;
    ASSERT_TRUE(a.neighbors(v) == b.neighbors(v)) << "row mismatch at " << v;
  }
}

TEST(GsbgRoundTrip, PropertyOverSeededGnp) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::size_t n = 20 + (seed * 13) % 90;
    const double p = 0.05 + 0.02 * static_cast<double>(seed % 10);
    const graph::Graph g = test::random_graph(n, p, seed);

    TempFile file("roundtrip");
    storage::write_gsbg_file(g, file.path());
    storage::MappedGraph::Options verify;
    verify.verify_checksum = true;
    const auto mapped = storage::MappedGraph::open(file.path(), verify);

    ASSERT_EQ(mapped.order(), g.order());
    ASSERT_EQ(mapped.num_edges(), g.num_edges());
    expect_same_adjacency(mapped.view(), g);
    EXPECT_TRUE(mapped.load() == g) << "seed " << seed;

    // CSR rows are the sorted neighbor lists.
    for (graph::VertexId v = 0; v < g.order(); ++v) {
      const auto row = mapped.csr_row(v);
      const auto expected = g.neighbor_list(v);
      ASSERT_EQ(std::vector<std::uint32_t>(row.begin(), row.end()), expected);
    }
  }
}

TEST(GsbgRoundTrip, WahSectionMatchesBitmapRows) {
  const graph::Graph g = test::random_graph(150, 0.03, 99);
  TempFile file("wah");
  storage::GsbgWriteOptions options;
  options.wah = true;
  storage::write_gsbg_file(g, file.path(), options);
  const auto mapped = storage::MappedGraph::open(file.path());
  ASSERT_TRUE(mapped.has_wah());
  for (graph::VertexId v = 0; v < g.order(); ++v) {
    EXPECT_TRUE(mapped.wah_row(v).decompress() == g.neighbors(v));
  }
}

TEST(GsbgRoundTrip, NoBitmapFileLoadsButDoesNotMap) {
  const graph::Graph g = test::random_graph(60, 0.1, 5);
  TempFile file("nobitmap");
  storage::GsbgWriteOptions options;
  options.bitmap = false;
  storage::write_gsbg_file(g, file.path(), options);
  const auto mapped = storage::MappedGraph::open(file.path());
  EXPECT_FALSE(mapped.has_bitmap());
  EXPECT_THROW(mapped.view(), std::runtime_error);
  EXPECT_TRUE(mapped.load() == g);
}

TEST(GsbgRoundTrip, DegreeSortedStoresPermutationAndRelabels) {
  const graph::Graph g = test::random_graph(80, 0.08, 12);
  TempFile file("degsort");
  storage::GsbgWriteOptions options;
  options.degree_sort = true;
  storage::write_gsbg_file(g, file.path(), options);
  const auto mapped = storage::MappedGraph::open(file.path());
  ASSERT_TRUE(mapped.degree_sorted());
  const auto perm = mapped.permutation();
  ASSERT_EQ(perm.size(), g.order());

  // Degrees are non-increasing in storage order.
  for (std::size_t v = 0; v + 1 < mapped.order(); ++v) {
    EXPECT_GE(mapped.degree(static_cast<graph::VertexId>(v)),
              mapped.degree(static_cast<graph::VertexId>(v + 1)));
  }
  // Stored graph is exactly relabel(g, perm).
  const graph::Graph relabeled = graph::relabel(
      g, std::vector<graph::VertexId>(perm.begin(), perm.end()));
  EXPECT_TRUE(mapped.load() == relabeled);
}

// --- corruption rejection ----------------------------------------------------

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class GsbgReject : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::Graph g = test::random_graph(50, 0.1, 3);
    file_ = std::make_unique<TempFile>("reject");
    storage::write_gsbg_file(g, file_->path());
    bytes_ = slurp(file_->path());
    ASSERT_GT(bytes_.size(), storage::kHeaderBytes);
  }

  void expect_rejected(const std::vector<char>& bytes) {
    dump(file_->path(), bytes);
    storage::MappedGraph::Options verify;
    verify.verify_checksum = true;
    EXPECT_THROW(storage::MappedGraph::open(file_->path(), verify),
                 std::runtime_error);
  }

  std::unique_ptr<TempFile> file_;
  std::vector<char> bytes_;
};

TEST_F(GsbgReject, TruncatedFiles) {
  // Mid-header, mid-section-table, and mid-payload truncations.
  for (const std::size_t keep :
       {std::size_t{10}, storage::kHeaderBytes + 8, bytes_.size() / 2,
        bytes_.size() - 1}) {
    expect_rejected(std::vector<char>(bytes_.begin(),
                                      bytes_.begin() +
                                          static_cast<std::ptrdiff_t>(keep)));
  }
}

TEST_F(GsbgReject, BadMagic) {
  auto bytes = bytes_;
  bytes[0] = 'X';
  expect_rejected(bytes);
}

TEST_F(GsbgReject, WrongVersion) {
  auto bytes = bytes_;
  bytes[8] = 99;  // version field low byte
  expect_rejected(bytes);
}

TEST_F(GsbgReject, ChecksumMismatch) {
  auto bytes = bytes_;
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);  // flip payload bit
  expect_rejected(bytes);
}

TEST_F(GsbgReject, BitmapPaddingBitsRejectedOnPlainOpen) {
  // Padding bits beyond n in a row's last word violate the invariant the
  // bit-string kernels rely on; this must be caught even without the
  // checksum pass (plain open).
  auto bytes = bytes_;
  std::uint64_t n = 0;
  std::uint64_t section_count = 0;
  std::memcpy(&n, bytes.data() + 16, 8);
  std::memcpy(&section_count, bytes.data() + 40, 8);
  ASSERT_NE(n % 64, 0u);
  bool patched = false;
  for (std::uint64_t i = 0; i < section_count; ++i) {
    const std::size_t base = storage::kHeaderBytes +
                             static_cast<std::size_t>(i) *
                                 storage::kSectionEntryBytes;
    std::uint32_t kind = 0;
    std::uint64_t offset = 0;
    std::memcpy(&kind, bytes.data() + base, 4);
    std::memcpy(&offset, bytes.data() + base + 8, 8);
    if (static_cast<storage::SectionKind>(kind) ==
        storage::SectionKind::kBitmap) {
      const std::size_t wpr = (n + 63) / 64;
      const std::size_t last_word = offset + (wpr - 1) * 8;
      bytes[last_word + 7] = static_cast<char>(
          static_cast<unsigned char>(bytes[last_word + 7]) | 0x80u);
      patched = true;
    }
  }
  ASSERT_TRUE(patched);
  dump(file_->path(), bytes);
  EXPECT_THROW(storage::MappedGraph::open(file_->path()),
               std::runtime_error);
}

TEST_F(GsbgReject, SectionOutOfBounds) {
  auto bytes = bytes_;
  // First section entry's offset field is at header + 8; point it past EOF.
  const std::uint64_t bogus = bytes.size() + storage::kSectionAlign;
  std::memcpy(bytes.data() + storage::kHeaderBytes + 8, &bogus, 8);
  expect_rejected(bytes);
}

TEST(GsbgRejectContent, CorruptPermutationEntryRejected) {
  const graph::Graph g = test::random_graph(40, 0.1, 8);
  TempFile file("permreject");
  storage::GsbgWriteOptions options;
  options.degree_sort = true;
  storage::write_gsbg_file(g, file.path(), options);

  auto bytes = slurp(file.path());
  std::uint64_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 40, 8);
  for (std::uint64_t i = 0; i < section_count; ++i) {
    const std::size_t base = storage::kHeaderBytes +
                             static_cast<std::size_t>(i) *
                                 storage::kSectionEntryBytes;
    std::uint32_t kind = 0;
    std::uint64_t offset = 0;
    std::memcpy(&kind, bytes.data() + base, 4);
    std::memcpy(&offset, bytes.data() + base + 8, 8);
    if (static_cast<storage::SectionKind>(kind) ==
        storage::SectionKind::kPermutation) {
      const std::uint32_t bogus = 0xFFFFFFFFu;  // >= n: not a bijection
      std::memcpy(bytes.data() + offset, &bogus, 4);
    }
  }
  dump(file.path(), bytes);
  EXPECT_THROW(storage::MappedGraph::open(file.path()), std::runtime_error);
}

// --- mmap vs in-memory identity ---------------------------------------------

TEST(MappedIdentity, CliquesAndParacliquesMatchInMemoryOn20Graphs) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const std::size_t n = 30 + (seed % 5) * 17;
    const graph::Graph g = test::random_graph(n, 0.25, seed);
    TempFile file("identity");
    storage::write_gsbg_file(g, file.path());
    const auto mapped = storage::MappedGraph::open(file.path());
    const graph::GraphView view = mapped.view();

    // Sequential enumerator, parallel enumerator, maximum clique,
    // paraclique extraction, hub ranking: all must be byte-identical.
    core::CliqueEnumeratorOptions seq;
    seq.range = {3, 0};
    core::CliqueCollector from_memory;
    core::CliqueCollector from_disk;
    core::enumerate_maximal_cliques(g, from_memory.callback(), seq);
    core::enumerate_maximal_cliques(view, from_disk.callback(), seq);
    ASSERT_EQ(from_memory.cliques(), from_disk.cliques()) << "seed " << seed;

    core::ParallelOptions par;
    par.threads = 2;
    core::CliqueCollector par_disk;
    core::enumerate_maximal_cliques_parallel(view, par_disk.callback(), par);
    ASSERT_EQ(core::normalize(std::move(from_memory.cliques())),
              core::normalize(std::move(par_disk.cliques())));

    ASSERT_EQ(core::maximum_clique(g).clique,
              core::maximum_clique(view).clique);

    const auto para_memory = analysis::extract_all_paracliques(g, 4, {});
    const auto para_disk = analysis::extract_all_paracliques(view, 4, {});
    ASSERT_EQ(para_memory.size(), para_disk.size());
    for (std::size_t i = 0; i < para_memory.size(); ++i) {
      ASSERT_EQ(para_memory[i].members, para_disk[i].members);
    }

    const auto hubs_memory = analysis::top_hubs(g, std::vector<core::Clique>{}, 5);
    const auto hubs_disk = analysis::top_hubs(view, std::vector<core::Clique>{}, 5);
    ASSERT_EQ(hubs_memory.size(), hubs_disk.size());
    for (std::size_t i = 0; i < hubs_memory.size(); ++i) {
      ASSERT_EQ(hubs_memory[i].vertex, hubs_disk[i].vertex);
      ASSERT_EQ(hubs_memory[i].degree, hubs_disk[i].degree);
    }
  }
}

}  // namespace
}  // namespace gsb
