// Tests for the graph substrate: structure, I/O round-trips, generators
// and transformations.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/transforms.h"
#include "util/rng.h"

namespace gsb::graph {
namespace {

Graph triangle_plus_pendant() {
  // 0-1-2 triangle, 3 pendant on 2, 4 isolated.
  return Graph::from_edges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(Graph, BasicStructure) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.order(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.density(), 4.0 / 10.0);
}

TEST(Graph, IgnoresSelfLoopsAndDuplicates) {
  Graph g(3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, RemoveEdge) {
  Graph g = triangle_plus_pendant();
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 3u);
  g.remove_edge(0, 1);  // no-op
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Graph, EdgeListCanonical) {
  const Graph g = triangle_plus_pendant();
  const auto edges = g.edge_list();
  const std::vector<std::pair<VertexId, VertexId>> expect{
      {0, 1}, {0, 2}, {1, 2}, {2, 3}};
  EXPECT_EQ(edges, expect);
}

TEST(Graph, NeighborList) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.neighbor_list(2), (std::vector<VertexId>{0, 1, 3}));
  EXPECT_TRUE(g.neighbor_list(4).empty());
}

TEST(Graph, Equality) {
  EXPECT_TRUE(triangle_plus_pendant() == triangle_plus_pendant());
  Graph other = triangle_plus_pendant();
  other.add_edge(3, 4);
  EXPECT_FALSE(triangle_plus_pendant() == other);
}

TEST(GraphIo, DimacsRoundtrip) {
  const Graph g = triangle_plus_pendant();
  std::stringstream stream;
  write_dimacs(g, stream, "test graph");
  const Graph back = read_dimacs(stream);
  EXPECT_TRUE(g == back);
}

TEST(GraphIo, DimacsRejectsMalformed) {
  std::stringstream missing_p("e 1 2\n");
  EXPECT_THROW(read_dimacs(missing_p), std::runtime_error);
  std::stringstream bad_edge("p edge 3 1\ne 1 9\n");
  EXPECT_THROW(read_dimacs(bad_edge), std::runtime_error);
  std::stringstream bad_kind("p edge 2 0\nq 1 2\n");
  EXPECT_THROW(read_dimacs(bad_kind), std::runtime_error);
}

TEST(GraphIo, EdgeListRoundtrip) {
  const Graph g = triangle_plus_pendant();
  std::stringstream stream;
  write_edge_list(g, stream);
  const Graph back = read_edge_list(stream);
  EXPECT_TRUE(g == back);
}

TEST(GraphIo, EdgeListComments) {
  std::stringstream stream("# header\n4\n0 1 # trailing\n# mid\n2 3\n");
  const Graph g = read_edge_list(stream);
  EXPECT_EQ(g.order(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(GraphIo, BinaryRoundtrip) {
  util::Rng rng(3);
  const Graph g = gnp(60, 0.2, rng);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(g, stream);
  const Graph back = read_binary(stream);
  EXPECT_TRUE(g == back);
}

TEST(GraphIo, BinaryRejectsBadMagic) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream << "NOPE";
  EXPECT_THROW(read_binary(stream), std::runtime_error);
}

TEST(Generators, GnpEdgeCases) {
  util::Rng rng(1);
  EXPECT_EQ(gnp(50, 0.0, rng).num_edges(), 0u);
  const Graph full = gnp(20, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 190u);
}

TEST(Generators, GnpDensityNearP) {
  util::Rng rng(11);
  const Graph g = gnp(400, 0.1, rng);
  EXPECT_NEAR(g.density(), 0.1, 0.02);
}

TEST(Generators, GnmExactEdges) {
  util::Rng rng(5);
  const Graph g = gnm(100, 321, rng);
  EXPECT_EQ(g.num_edges(), 321u);
  EXPECT_EQ(gnm(10, 1000, rng).num_edges(), 45u);  // clamped to max
}

TEST(Generators, BarabasiAlbertConnectedHeavyTail) {
  util::Rng rng(9);
  const Graph g = barabasi_albert(300, 2, rng);
  EXPECT_GE(g.num_edges(), 2u * (300 - 3));
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 1u);
  EXPECT_GT(g.max_degree(), 10u);  // hubs emerge
}

TEST(Generators, PlantedCliqueIsClique) {
  util::Rng rng(21);
  const auto planted = planted_clique(200, 12, 0.05, rng);
  ASSERT_EQ(planted.members.size(), 12u);
  for (std::size_t i = 0; i < planted.members.size(); ++i) {
    for (std::size_t j = i + 1; j < planted.members.size(); ++j) {
      EXPECT_TRUE(planted.graph.has_edge(planted.members[i],
                                         planted.members[j]));
    }
  }
}

TEST(Generators, PlantedModulesStructure) {
  util::Rng rng(33);
  ModuleGraphConfig config;
  config.n = 300;
  config.num_modules = 12;
  config.min_module_size = 4;
  config.max_module_size = 15;
  config.p_in = 1.0;
  config.background_edges = 50;
  const ModuleGraph result = planted_modules(config, rng);
  ASSERT_EQ(result.modules.size(), 12u);
  EXPECT_EQ(result.modules[0].size(), 15u);  // first forced to max
  for (const auto& module : result.modules) {
    for (std::size_t i = 0; i < module.size(); ++i) {
      for (std::size_t j = i + 1; j < module.size(); ++j) {
        EXPECT_TRUE(result.graph.has_edge(module[i], module[j]));
      }
    }
  }
}

TEST(Generators, PlantedModulesEdgeTarget) {
  util::Rng rng(41);
  ModuleGraphConfig config;
  config.n = 500;
  config.num_modules = 10;
  config.max_module_size = 10;
  const ModuleGraph result = planted_modules_with_edges(config, 2000, rng);
  EXPECT_GE(result.graph.num_edges(), 1900u);
  EXPECT_LE(result.graph.num_edges(), 2100u);
}

TEST(Transforms, ComplementInvolution) {
  util::Rng rng(7);
  const Graph g = gnp(40, 0.3, rng);
  const Graph comp = complement(g);
  EXPECT_EQ(g.num_edges() + comp.num_edges(), 40u * 39u / 2u);
  EXPECT_TRUE(complement(comp) == g);
}

TEST(Transforms, InducedSubgraph) {
  const Graph g = triangle_plus_pendant();
  const auto sub = induced_subgraph(g, {2, 0, 1, 2});
  EXPECT_EQ(sub.graph.order(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);  // the triangle
  EXPECT_EQ(sub.mapping, (std::vector<VertexId>{0, 1, 2}));
}

TEST(Transforms, KcoreMaskIteratedPeeling) {
  // Path 0-1-2-3 plus triangle 4-5-6: the 2-core is exactly the triangle.
  const Graph g = Graph::from_edges(
      7, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {4, 6}});
  const auto mask = kcore_mask(g, 2);
  EXPECT_FALSE(mask.test(0));
  EXPECT_FALSE(mask.test(1));  // iterated: falls after 0 leaves
  EXPECT_FALSE(mask.test(2));
  EXPECT_FALSE(mask.test(3));
  EXPECT_TRUE(mask.test(4));
  EXPECT_TRUE(mask.test(5));
  EXPECT_TRUE(mask.test(6));
  const auto sub = kcore_subgraph(g, 2);
  EXPECT_EQ(sub.graph.order(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
}

TEST(Transforms, KcoreZeroKeepsAll) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(kcore_mask(g, 0).count(), 5u);
}

TEST(Transforms, DegeneracyOfCompleteAndTree) {
  util::Rng rng(3);
  const Graph complete = gnp(12, 1.0, rng);
  EXPECT_EQ(degeneracy_order(complete).degeneracy, 11u);
  // A path has degeneracy 1.
  Graph path(10);
  for (VertexId v = 0; v + 1 < 10; ++v) path.add_edge(v, v + 1);
  const auto result = degeneracy_order(path);
  EXPECT_EQ(result.degeneracy, 1u);
  EXPECT_EQ(result.order.size(), 10u);
}

TEST(Transforms, ConnectedComponents) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 3u);
  EXPECT_EQ(comps.component[0], comps.component[1]);
  EXPECT_EQ(comps.component[1], comps.component[2]);
  EXPECT_EQ(comps.component[3], comps.component[4]);
  EXPECT_NE(comps.component[0], comps.component[3]);
  EXPECT_NE(comps.component[3], comps.component[5]);
}

TEST(Transforms, RelabelPreservesStructure) {
  const Graph g = triangle_plus_pendant();
  const std::vector<VertexId> perm{4, 3, 2, 1, 0};  // reverse
  const Graph relabeled = relabel(g, perm);
  EXPECT_EQ(relabeled.num_edges(), g.num_edges());
  // new vertex i is old perm[i]: old edge (0,1) -> new (4,3).
  EXPECT_TRUE(relabeled.has_edge(4, 3));
  EXPECT_TRUE(relabeled.has_edge(2, 1));  // old (2,3)
}

TEST(Transforms, RelabelRejectsNonPermutation) {
  const Graph g = triangle_plus_pendant();
  EXPECT_THROW(relabel(g, {0, 0, 1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(relabel(g, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace gsb::graph

namespace gsb::graph {
namespace {

TEST(GraphIo, BinaryRejectsTruncated) {
  util::Rng rng(5);
  const Graph g = gnp(20, 0.3, rng);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(g, stream);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() / 2);  // cut mid-edge-list
  std::stringstream cut(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary(cut), std::runtime_error);
}

TEST(GraphIo, EdgeListRejectsOutOfRange) {
  std::stringstream stream("3\n0 7\n");
  EXPECT_THROW(read_edge_list(stream), std::runtime_error);
}

TEST(Generators, PlantModuleRespectsOverlapZero) {
  util::Rng rng(9);
  Graph g(200);
  std::vector<VertexId> used;
  bits::DynamicBitset used_mask(200);
  const auto first = plant_module(g, 20, 1.0, 0.0, used, used_mask, rng);
  const auto second = plant_module(g, 20, 1.0, 0.0, used, used_mask, rng);
  // With overlap 0 and plenty of fresh vertices, modules are disjoint.
  std::vector<VertexId> inter;
  std::set_intersection(first.begin(), first.end(), second.begin(),
                        second.end(), std::back_inserter(inter));
  EXPECT_TRUE(inter.empty());
}

TEST(Generators, SampleModuleSizeStaysInBounds) {
  util::Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const auto s = sample_module_size(4, 12, 1.7, rng);
    EXPECT_GE(s, 4u);
    EXPECT_LE(s, 12u);
  }
  EXPECT_EQ(sample_module_size(5, 5, 2.0, rng), 5u);
  EXPECT_EQ(sample_module_size(7, 3, 2.0, rng), 7u);  // hi <= lo -> lo
}

}  // namespace
}  // namespace gsb::graph
