// Tests for DynamicBitset: single-bit ops, whole-set algebra, the fused
// kernels the enumerator depends on, and randomized equivalence against a
// std::vector<bool> reference model.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "bitset/dynamic_bitset.h"
#include "util/rng.h"

namespace gsb::bits {
namespace {

TEST(DynamicBitset, StartsClear) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_FALSE(bits.any());
}

TEST(DynamicBitset, SetResetTestFlip) {
  DynamicBitset bits(100);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(99);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(99));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 4u);
  bits.reset(63);
  EXPECT_FALSE(bits.test(63));
  bits.flip(63);
  EXPECT_TRUE(bits.test(63));
  bits.flip(63);
  EXPECT_FALSE(bits.test(63));
}

TEST(DynamicBitset, SetAllRespectsSize) {
  DynamicBitset bits(70);
  bits.set_all();
  EXPECT_EQ(bits.count(), 70u);
  bits.flip_all();
  EXPECT_EQ(bits.count(), 0u);
}

TEST(DynamicBitset, FlipAllOnPartialWord) {
  DynamicBitset bits(65);
  bits.set(0);
  bits.flip_all();
  EXPECT_EQ(bits.count(), 64u);
  EXPECT_FALSE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
}

TEST(DynamicBitset, FindFirstAndNext) {
  DynamicBitset bits(200);
  EXPECT_EQ(bits.find_first(), 200u);
  bits.set(5);
  bits.set(64);
  bits.set(199);
  EXPECT_EQ(bits.find_first(), 5u);
  EXPECT_EQ(bits.find_next(5), 64u);
  EXPECT_EQ(bits.find_next(64), 199u);
  EXPECT_EQ(bits.find_next(199), 200u);
  EXPECT_EQ(bits.find_next(0), 5u);
}

TEST(DynamicBitset, FindNextAtBoundary) {
  DynamicBitset bits(64);
  bits.set(63);
  EXPECT_EQ(bits.find_next(62), 63u);
  EXPECT_EQ(bits.find_next(63), 64u);
}

TEST(DynamicBitset, ForEachVisitsAscending) {
  DynamicBitset bits(300);
  const std::vector<std::uint32_t> expect{0, 1, 63, 64, 128, 255, 299};
  for (auto v : expect) bits.set(v);
  std::vector<std::uint32_t> seen;
  bits.for_each([&](std::size_t v) {
    seen.push_back(static_cast<std::uint32_t>(v));
  });
  EXPECT_EQ(seen, expect);
  EXPECT_EQ(bits.to_vector(), expect);
}

TEST(DynamicBitset, ResizePreservesAndClears) {
  DynamicBitset bits(10);
  bits.set(3);
  bits.set(9);
  bits.resize(100);
  EXPECT_TRUE(bits.test(3));
  EXPECT_TRUE(bits.test(9));
  EXPECT_EQ(bits.count(), 2u);
  bits.resize(4);
  EXPECT_EQ(bits.count(), 1u);  // bit 9 dropped
  EXPECT_TRUE(bits.test(3));
}

TEST(DynamicBitset, AndOrXorAndNot) {
  DynamicBitset a(130);
  DynamicBitset b(130);
  a.set(1);
  a.set(100);
  a.set(129);
  b.set(100);
  b.set(2);

  DynamicBitset and_result = a;
  and_result &= b;
  EXPECT_EQ(and_result.to_vector(), (std::vector<std::uint32_t>{100}));

  DynamicBitset or_result = a;
  or_result |= b;
  EXPECT_EQ(or_result.to_vector(),
            (std::vector<std::uint32_t>{1, 2, 100, 129}));

  DynamicBitset xor_result = a;
  xor_result ^= b;
  EXPECT_EQ(xor_result.to_vector(), (std::vector<std::uint32_t>{1, 2, 129}));

  DynamicBitset diff = a;
  diff.and_not(b);
  EXPECT_EQ(diff.to_vector(), (std::vector<std::uint32_t>{1, 129}));
}

TEST(DynamicBitset, AssignAndMatchesOperator) {
  util::Rng rng(5);
  DynamicBitset a(500);
  DynamicBitset b(500);
  for (int i = 0; i < 200; ++i) {
    a.set(rng.below(500));
    b.set(rng.below(500));
  }
  DynamicBitset expect = a;
  expect &= b;
  DynamicBitset fused(500);
  fused.assign_and(a, b);
  EXPECT_EQ(fused, expect);
  // Aliasing: out aliases an operand.
  DynamicBitset alias = a;
  alias.assign_and(alias, b);
  EXPECT_EQ(alias, expect);
}

TEST(DynamicBitset, IntersectsEarlyExitSemantics) {
  DynamicBitset a(256);
  DynamicBitset b(256);
  EXPECT_FALSE(DynamicBitset::intersects(a, b));
  a.set(200);
  EXPECT_FALSE(DynamicBitset::intersects(a, b));
  b.set(200);
  EXPECT_TRUE(DynamicBitset::intersects(a, b));
  b.reset(200);
  b.set(199);
  EXPECT_FALSE(DynamicBitset::intersects(a, b));
}

TEST(DynamicBitset, CountAnd) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  for (std::size_t i = 0; i < 100; i += 2) a.set(i);
  for (std::size_t i = 0; i < 100; i += 3) b.set(i);
  // multiples of 6 below 100: 0,6,...,96 -> 17 values
  EXPECT_EQ(DynamicBitset::count_and(a, b), 17u);
}

TEST(DynamicBitset, SubsetRelation) {
  DynamicBitset small(90);
  DynamicBitset big(90);
  small.set(10);
  small.set(70);
  big.set(10);
  big.set(70);
  big.set(80);
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));
}

TEST(DynamicBitset, ToStringRendersPositions) {
  DynamicBitset bits(5);
  bits.set(1);
  bits.set(4);
  EXPECT_EQ(bits.to_string(), "01001");
}

TEST(DynamicBitset, EqualityIncludesSize) {
  DynamicBitset a(10);
  DynamicBitset b(11);
  EXPECT_FALSE(a == b);
  DynamicBitset c(10);
  EXPECT_TRUE(a == c);
  c.set(3);
  EXPECT_FALSE(a == c);
}

/// Randomized equivalence against std::vector<bool>: applies a mixed op
/// sequence and compares the full state.
class BitsetModelTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(BitsetModelTest, MatchesReferenceModel) {
  const auto [nbits, seed] = GetParam();
  util::Rng rng(seed);
  DynamicBitset bits(nbits);
  std::vector<bool> model(nbits, false);
  for (int step = 0; step < 2000; ++step) {
    const std::size_t pos = nbits == 0 ? 0 : rng.below(nbits);
    switch (rng.below(4)) {
      case 0:
        bits.set(pos);
        model[pos] = true;
        break;
      case 1:
        bits.reset(pos);
        model[pos] = false;
        break;
      case 2:
        bits.flip(pos);
        model[pos] = !model[pos];
        break;
      default:
        ASSERT_EQ(bits.test(pos), model[pos]);
    }
  }
  std::size_t expected_count = 0;
  for (std::size_t i = 0; i < nbits; ++i) {
    ASSERT_EQ(bits.test(i), model[i]) << "position " << i;
    expected_count += model[i];
  }
  EXPECT_EQ(bits.count(), expected_count);
  // find_next chain visits exactly the set positions.
  std::vector<std::size_t> chain;
  for (std::size_t v = bits.find_first(); v < nbits; v = bits.find_next(v)) {
    chain.push_back(v);
  }
  std::vector<std::size_t> expect;
  for (std::size_t i = 0; i < nbits; ++i) {
    if (model[i]) expect.push_back(i);
  }
  EXPECT_EQ(chain, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BitsetModelTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 63, 64, 65, 127, 128,
                                                      500, 1031),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace gsb::bits

namespace gsb::bits {
namespace {

TEST(DynamicBitset, CountFrom) {
  DynamicBitset bits(200);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(130);
  bits.set(199);
  EXPECT_EQ(bits.count_from(0), 5u);
  EXPECT_EQ(bits.count_from(1), 4u);
  EXPECT_EQ(bits.count_from(63), 4u);
  EXPECT_EQ(bits.count_from(64), 3u);
  EXPECT_EQ(bits.count_from(65), 2u);
  EXPECT_EQ(bits.count_from(199), 1u);
  EXPECT_EQ(bits.count_from(200), 0u);
  EXPECT_EQ(bits.count_from(500), 0u);
}

TEST(DynamicBitset, CountFromMatchesManualScan) {
  util::Rng rng(99);
  DynamicBitset bits(513);
  for (int i = 0; i < 200; ++i) bits.set(rng.below(513));
  for (std::size_t pos : {0u, 1u, 63u, 64u, 65u, 511u, 512u}) {
    std::size_t manual = 0;
    for (std::size_t i = pos; i < bits.size(); ++i) manual += bits.test(i);
    EXPECT_EQ(bits.count_from(pos), manual) << "pos=" << pos;
  }
}

}  // namespace
}  // namespace gsb::bits
