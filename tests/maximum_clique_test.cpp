// Tests for clique bounds and the branch-and-bound maximum clique solver.

#include <gtest/gtest.h>

#include "core/maximum_clique.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "tests/test_helpers.h"

namespace gsb::core {
namespace {

std::size_t exhaustive_omega(const graph::Graph& g) {
  std::size_t best = 0;
  for (const auto& clique : exhaustive_maximal_cliques(g)) {
    best = std::max(best, clique.size());
  }
  return best;
}

TEST(MaxClique, SmallKnownGraphs) {
  const auto triangle =
      graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_EQ(maximum_clique(triangle).clique, (Clique{0, 1, 2}));

  graph::Graph path(5);
  for (VertexId v = 0; v + 1 < 5; ++v) path.add_edge(v, v + 1);
  EXPECT_EQ(maximum_clique(path).clique.size(), 2u);

  const graph::Graph isolated(3);
  EXPECT_EQ(maximum_clique(isolated).clique.size(), 1u);

  const graph::Graph empty(0);
  EXPECT_TRUE(maximum_clique(empty).clique.empty());
}

TEST(MaxClique, BoundsSandwichOmega) {
  for (int seed = 1; seed <= 5; ++seed) {
    const auto g = test::random_graph(40, 0.4, seed);
    const auto lb = greedy_clique_lower_bound(g);
    const auto ub = greedy_coloring_upper_bound(g);
    const auto omega = maximum_clique(g).clique.size();
    EXPECT_TRUE(is_clique(g, lb));
    EXPECT_LE(lb.size(), omega);
    EXPECT_GE(ub, omega);
  }
}

TEST(MaxClique, ColoringOfBipartiteIsTwo) {
  graph::Graph bipartite(10);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 5; v < 10; ++v) bipartite.add_edge(u, v);
  }
  EXPECT_EQ(greedy_coloring_upper_bound(bipartite), 2u);
  EXPECT_EQ(maximum_clique(bipartite).clique.size(), 2u);
}

TEST(MaxClique, RecoversPlantedClique) {
  util::Rng rng(7);
  const auto planted = graph::planted_clique(150, 16, 0.05, rng);
  const auto result = maximum_clique(planted.graph);
  EXPECT_EQ(result.clique.size(), 16u);
  EXPECT_EQ(result.clique, planted.members);
}

TEST(MaxClique, ModulePresetHitsConfiguredOmega) {
  util::Rng rng(9);
  graph::ModuleGraphConfig config;
  config.n = 250;
  config.num_modules = 20;
  config.max_module_size = 18;
  config.p_in = 1.0;
  config.background_edges = 200;
  const auto mg = graph::planted_modules(config, rng);
  EXPECT_GE(maximum_clique(mg.graph).clique.size(), 18u);
}

class MaxCliqueSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {};

TEST_P(MaxCliqueSweepTest, MatchesExhaustive) {
  const auto [n, p, seed] = GetParam();
  const auto g = test::random_graph(n, p, static_cast<std::uint64_t>(seed));
  const auto result = maximum_clique(g);
  EXPECT_TRUE(is_clique(g, result.clique));
  EXPECT_EQ(result.clique.size(), exhaustive_omega(g));
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, MaxCliqueSweepTest,
    ::testing::Combine(::testing::Values<std::size_t>(10, 14, 17),
                       ::testing::Values(0.3, 0.6, 0.85),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace gsb::core
