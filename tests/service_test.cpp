// Tests for the graph query service: catalog ref-counting and epochs, the
// .gsbci clique index (indexed answers == full-stream rescans, and indexed
// queries never touch the rest of the stream), byte-identical results with
// the cache on/off and at every thread count, LRU eviction under the byte
// budget, and the serve loop's stream/socket transports.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <optional>

#include "analysis/clique_stats.h"
#include "analysis/hubs.h"
#include "analysis/paraclique.h"
#include "core/bron_kerbosch.h"
#include "core/clique.h"
#include "graph/transforms.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "service/batch_executor.h"
#include "service/client.h"
#include "service/clique_index.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/query_engine.h"
#include "service/result_cache.h"
#include "service/server.h"
#include "service/tcp_server.h"
#include "service/wire_protocol.h"
#include "storage/clique_stream.h"
#include "storage/gsbg_writer.h"
#include "tests/test_helpers.h"

#if defined(__unix__) || defined(__APPLE__)
#define GSB_TEST_UNIX_SOCKETS 1
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace gsb::service {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// Graph + clique stream + sidecar index on disk for one seeded graph.
struct Artifacts {
  graph::Graph graph;
  std::string gsbg;
  std::string gsbc;
  std::string gsbci;

  ~Artifacts() {
    std::remove(gsbg.c_str());
    std::remove(gsbc.c_str());
    std::remove(gsbci.c_str());
  }
};

Artifacts make_artifacts(std::size_t n, double p, std::uint64_t seed,
                         const std::string& stem) {
  Artifacts a;
  a.graph = test::random_graph(n, p, seed);
  a.gsbg = temp_path(stem + ".gsbg");
  a.gsbc = temp_path(stem + ".gsbc");
  a.gsbci = default_index_path(a.gsbc);
  storage::write_gsbg_file(a.graph, a.gsbg);
  storage::GsbcWriter writer(a.gsbc, a.graph.order());
  core::degeneracy_bk(a.graph, [&](std::span<const graph::VertexId> clique) {
    writer.append(clique);
  });
  writer.close();
  build_clique_index(a.gsbc, a.gsbci);
  return a;
}

GraphSpec spec_for(const Artifacts& a, bool with_index = true) {
  GraphSpec spec;
  spec.graph_path = a.gsbg;
  spec.cliques_path = a.gsbc;
  spec.probe_index = with_index;
  return spec;
}

/// A mixed workload touching every query kind (plus deliberate errors).
std::vector<std::string> mixed_workload(const graph::Graph& g) {
  std::vector<std::string> lines;
  const auto n = static_cast<graph::VertexId>(g.order());
  for (graph::VertexId v = 0; v < n; v += 3) {
    lines.push_back("neighbors " + std::to_string(v));
    lines.push_back("degree " + std::to_string(v));
    lines.push_back("cliques-containing " + std::to_string(v));
    lines.push_back("kcore-membership 3 " + std::to_string(v));
    if (v + 1 < n) {
      lines.push_back("common-neighbors " + std::to_string(v + 1) + " " +
                      std::to_string(v));
      lines.push_back("induced-subgraph " + std::to_string(v) + " " +
                      std::to_string(v + 1) + " " + std::to_string((v + 7) % n));
    }
  }
  lines.push_back("top-hubs 5");
  lines.push_back("neighbors " + std::to_string(n));  // out of range
  lines.push_back("no-such-query 1");                 // parse error
  lines.push_back("degree 0");                        // repeat -> cache hit
  lines.push_back("degree 0");
  return lines;
}

/// Turns the global metrics registry and tracer on for one test and
/// restores the disabled default on exit, so instrumentation state never
/// leaks between tests.
struct ScopedObservability {
  ScopedObservability() {
    obs::MetricsRegistry::global().set_enabled(true);
    obs::Tracer::global().set_enabled(true);
  }
  ~ScopedObservability() {
    obs::MetricsRegistry::global().set_enabled(false);
    obs::Tracer::global().set_enabled(false);
    obs::Tracer::global().set_slow_log_micros(0);
    obs::Tracer::global().clear();
  }
};

/// Turns the global timeline journal on for one test and restores the
/// disabled default (plus a fresh capture window) on exit.
struct ScopedTimeline {
  ScopedTimeline() {
    obs::TimelineJournal::global().reset();
    obs::TimelineJournal::global().set_enabled(true);
  }
  ~ScopedTimeline() {
    obs::TimelineJournal::global().set_enabled(false);
    obs::TimelineJournal::global().reset();
  }
};

TEST(Query, ParsesAndCanonicalizes) {
  EXPECT_EQ(canonical_query(parse_query("  common-neighbors 9   2 ")),
            "common-neighbors 2 9");
  EXPECT_EQ(canonical_query(parse_query("induced-subgraph 7 3 3 1")),
            "induced-subgraph 1 3 7");
  EXPECT_EQ(canonical_query(parse_query("paraclique-expand 2 5 1 5")),
            "paraclique-expand 2 1 5");
  EXPECT_EQ(canonical_query(parse_query("kcore-membership 4 11")),
            "kcore-membership 4 11");
  EXPECT_EQ(canonical_query(parse_query("top-hubs 10")), "top-hubs 10");
  EXPECT_THROW(parse_query(""), std::runtime_error);
  EXPECT_THROW(parse_query("degree"), std::runtime_error);
  EXPECT_THROW(parse_query("degree 1 2"), std::runtime_error);
  EXPECT_THROW(parse_query("degree -3"), std::runtime_error);
  EXPECT_THROW(parse_query("common-neighbors 4 4"), std::runtime_error);
  EXPECT_THROW(parse_query("top-hubs 0"), std::runtime_error);
  EXPECT_THROW(parse_query("frobnicate 1"), std::runtime_error);
}

TEST(QueryEngine, AnswersMatchDirectComputation) {
  const auto a = make_artifacts(40, 0.3, 7, "service_direct");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  QueryEngine engine(entry);

  const graph::GraphView g(a.graph);
  std::string expected = "neighbors 5:";
  for (const graph::VertexId w : g.neighbor_list(5)) {
    expected += ' ' + std::to_string(w);
  }
  EXPECT_EQ(engine.execute_line("neighbors 5"), expected);
  EXPECT_EQ(engine.execute_line("degree 5"),
            "degree 5: " + std::to_string(g.degree(5)));

  std::string common = "common-neighbors 2 9:";
  for (const graph::VertexId w : g.neighbor_list(2)) {
    if (g.has_edge(9, w)) common += ' ' + std::to_string(w);
  }
  EXPECT_EQ(engine.execute_line("common-neighbors 9 2"), common);

  const auto mask = graph::kcore_mask(g, 3);
  EXPECT_EQ(engine.execute_line("kcore-membership 3 5"),
            std::string("kcore-membership 3 5: ") + (mask.test(5) ? "1" : "0"));

  const auto hubs = analysis::top_hubs(
      g, analysis::vertex_participation(
             g.order(),
             [&] {
               core::CliqueCollector collector;
               core::degeneracy_bk(g, collector.callback());
               return collector.cliques();
             }()),
      3);
  std::string hub_line = "top-hubs 3:";
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    hub_line += i == 0 ? " " : "; ";
    hub_line += std::to_string(hubs[i].vertex) +
                " deg=" + std::to_string(hubs[i].degree) +
                " cliques=" + std::to_string(hubs[i].clique_participation);
  }
  EXPECT_EQ(engine.execute_line("top-hubs 3"), hub_line);

  // Errors are responses, not exceptions.
  const auto bad = engine.execute_line("degree 4096");
  EXPECT_TRUE(bad.starts_with("error:")) << bad;
  EXPECT_TRUE(engine.execute_line("bogus").starts_with("error:"));
}

TEST(QueryEngine, ParacliqueExpandMatchesAnalysis) {
  const auto a = make_artifacts(36, 0.35, 11, "service_para");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  QueryEngine engine(entry);
  const graph::GraphView g(a.graph);

  // Seed with a real clique (the largest streamed one).
  core::CliqueCollector collector;
  core::degeneracy_bk(g, collector.callback());
  core::Clique best;
  for (const auto& clique : collector.cliques()) {
    if (clique.size() > best.size()) best = clique;
  }
  ASSERT_GE(best.size(), 2u);

  analysis::ParacliqueOptions options;
  options.glom = 1;
  const auto grown = analysis::grow_paraclique(g, best, options);
  std::string line = "paraclique-expand 1";
  for (const graph::VertexId v : best) line += ' ' + std::to_string(v);
  std::string expected = canonical_query(parse_query(line)) + ":";
  for (const graph::VertexId v : grown.members) {
    expected += ' ' + std::to_string(v);
  }
  EXPECT_EQ(engine.execute_line(line), expected);

  // A non-clique seed is rejected deterministically.
  graph::VertexId u = 0;
  graph::VertexId w = 1;
  bool found = false;
  for (u = 0; u < g.order() && !found; ++u) {
    for (w = u + 1; w < g.order(); ++w) {
      if (!g.has_edge(u, w)) {
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);
  --u;  // undo the loop increment after `found`
  const auto bad = engine.execute_line("paraclique-expand 1 " +
                                       std::to_string(u) + " " +
                                       std::to_string(w));
  EXPECT_TRUE(bad.starts_with("error:")) << bad;
}

TEST(CliqueIndex, IndexedEqualsRescanOn20SeededGraphs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto a = make_artifacts(26 + seed, 0.35, seed,
                                  "service_idx_" + std::to_string(seed));
    GraphCatalog catalog;
    auto indexed = catalog.open("indexed", spec_for(a, true));
    auto rescan = catalog.open("rescan", spec_for(a, false));
    ASSERT_NE(indexed->index(), nullptr);
    ASSERT_EQ(rescan->index(), nullptr);
    QueryEngine indexed_engine(indexed);
    QueryEngine rescan_engine(rescan);
    for (graph::VertexId v = 0; v < a.graph.order(); ++v) {
      const std::string line = "cliques-containing " + std::to_string(v);
      EXPECT_EQ(indexed_engine.execute_line(line),
                rescan_engine.execute_line(line))
          << "seed " << seed << " vertex " << v;
    }
    EXPECT_EQ(indexed_engine.stats().index_queries, a.graph.order());
    EXPECT_EQ(indexed_engine.stats().stream_scans, 0u);
    EXPECT_EQ(rescan_engine.stats().stream_scans, a.graph.order());
  }
}

TEST(CliqueIndex, AnswersWithoutScanningTheFullStream) {
  const auto a = make_artifacts(60, 0.3, 3, "service_noscan");
  auto reader = storage::GsbcReader::open(a.gsbc);
  const std::uint64_t total = reader.clique_count();
  ASSERT_GT(total, 10u);

  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  const CliqueIndex* index = entry->index();
  ASSERT_NE(index, nullptr);

  // Pick a vertex that is in some cliques but far from all of them.
  graph::VertexId v = 0;
  for (; v < a.graph.order(); ++v) {
    const auto count = index->participation(v);
    if (count > 0 && count < total / 2) break;
  }
  ASSERT_LT(v, a.graph.order());

  QueryEngine engine(entry);
  const auto response =
      engine.execute_line("cliques-containing " + std::to_string(v));
  EXPECT_TRUE(response.starts_with("cliques-containing")) << response;
  // Exactly the posting list was decoded — not the remainder of the stream.
  EXPECT_EQ(engine.stats().records_decoded, index->participation(v));
  EXPECT_LT(engine.stats().records_decoded, total);
  EXPECT_EQ(engine.stats().index_queries, 1u);
  EXPECT_EQ(engine.stats().stream_scans, 0u);

  // Participation shortcut: posting lengths == one full stream count.
  auto scan = storage::GsbcReader::open(a.gsbc);
  const auto expected =
      analysis::vertex_participation(a.graph.order(), scan);
  for (graph::VertexId u = 0; u < a.graph.order(); ++u) {
    EXPECT_EQ(index->participation(u), expected[u]) << "vertex " << u;
  }
}

TEST(CliqueIndex, RejectsCorruptionAndStaleness) {
  const auto a = make_artifacts(30, 0.3, 5, "service_idxbad");

  // Truncation: the exact-size check fails loudly.
  const auto bytes = fs::file_size(a.gsbci);
  fs::resize_file(a.gsbci, bytes - 8);
  EXPECT_THROW(CliqueIndex::open(a.gsbci), std::runtime_error);

  // A flipped payload byte — even one leaving every array structurally
  // plausible — is caught by the always-on checksum pass.
  build_clique_index(a.gsbc, a.gsbci);
  {
    std::fstream f(a.gsbci, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(bytes - 3));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(bytes - 3));
    f.write(&byte, 1);
  }
  EXPECT_THROW(CliqueIndex::open(a.gsbci), std::runtime_error);

  // Header counts near 2^64/8 must not wrap the expected-size arithmetic
  // into an accepted (and then out-of-bounds) mapping.
  {
    const std::string crafted = (fs::temp_directory_path() /
                                 "service_idx_crafted.gsbci")
                                    .string();
    std::ofstream f(crafted, std::ios::binary | std::ios::trunc);
    char raw[storage::kGsbciHeaderBytes] = {};
    std::memcpy(raw, storage::kGsbciMagic, sizeof(storage::kGsbciMagic));
    const std::uint32_t version = storage::kGsbciVersion;
    std::memcpy(raw + 8, &version, 4);
    const std::uint64_t huge = (1ull << 61) - 1;  // 8*(huge+0+1+0) wraps to 0
    std::memcpy(raw + 24, &huge, 8);
    const std::uint64_t empty_checksum = storage::Fnv1a{}.digest();
    std::memcpy(raw + 48, &empty_checksum, 8);
    f.write(raw, sizeof(raw));
    f.close();
    EXPECT_THROW(CliqueIndex::open(crafted), std::runtime_error);
    std::remove(crafted.c_str());
  }

  // Stale sidecar: stream rewritten, old index kept -> catalog refuses.
  build_clique_index(a.gsbc, a.gsbci);
  {
    storage::GsbcWriter writer(a.gsbc, a.graph.order());
    writer.append(std::vector<graph::VertexId>{0, 1});
    writer.close();
  }
  GraphCatalog catalog;
  EXPECT_THROW(catalog.open("g", spec_for(a)), std::runtime_error);
  // Without the sidecar the rewritten stream is fine.
  auto entry = catalog.open("g", spec_for(a, false));
  EXPECT_EQ(entry->index(), nullptr);
}

TEST(Batch, CacheOnOffAndThreadCountsAreByteIdentical) {
  const auto a = make_artifacts(48, 0.3, 13, "service_batch");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  const auto lines = mixed_workload(a.graph);

  BatchOptions sequential;
  sequential.threads = 1;
  const auto reference = execute_batch(entry, lines, sequential);
  ASSERT_EQ(reference.responses.size(), lines.size());

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    BatchOptions options;
    options.threads = threads;
    const auto concurrent = execute_batch(entry, lines, options);
    EXPECT_EQ(concurrent.responses, reference.responses)
        << "threads " << threads;

    ResultCache cache(8u << 20);
    options.cache = &cache;
    const auto cold = execute_batch(entry, lines, options);
    EXPECT_EQ(cold.responses, reference.responses)
        << "cold cache, threads " << threads;
    const auto warm = execute_batch(entry, lines, options);
    EXPECT_EQ(warm.responses, reference.responses)
        << "warm cache, threads " << threads;
    // Second pass: every successful query replays from the cache.
    EXPECT_GT(warm.cache_hits, 0u);
    EXPECT_EQ(warm.engine.index_queries, 0u);
    EXPECT_EQ(warm.engine.stream_scans, 0u);
  }
}

TEST(ResultCache, LruEvictionRespectsByteBudget) {
  util::MemoryTracker tracker;
  const std::size_t budget = 4096;
  ResultCache cache(budget, &tracker);
  const std::string value(200, 'x');
  for (int i = 0; i < 200; ++i) {
    cache.insert(1, "query " + std::to_string(i), value);
    EXPECT_LE(cache.stats().bytes, budget);
    EXPECT_EQ(tracker.current(util::MemTag::kResultCache),
              cache.stats().bytes);
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_LE(stats.bytes, budget);
  // Oldest entries evicted, newest resident.
  EXPECT_FALSE(cache.lookup(1, "query 0").has_value());
  EXPECT_TRUE(cache.lookup(1, "query 199").has_value());

  // Recency refresh: touching an old entry saves it from eviction.
  ResultCache lru(3 * (ResultCache::kEntryOverhead + 16 + 64));
  const std::string small(64, 'y');
  lru.insert(1, "a", small);
  lru.insert(1, "b", small);
  lru.insert(1, "c", small);
  ASSERT_TRUE(lru.lookup(1, "a").has_value());  // refresh a
  lru.insert(1, "d", small);                    // evicts b, not a
  EXPECT_TRUE(lru.lookup(1, "a").has_value());
  EXPECT_FALSE(lru.lookup(1, "b").has_value());

  // An entry bigger than the whole budget is not cached at all.
  ResultCache tiny(128, &tracker);
  tiny.insert(1, "huge", std::string(4096, 'z'));
  EXPECT_EQ(tiny.stats().entries, 0u);
  EXPECT_FALSE(tiny.lookup(1, "huge").has_value());
}

TEST(ResultCache, EpochsIsolateReloadedGraphs) {
  ResultCache cache(1u << 20);
  cache.insert(7, "degree 1", "degree 1: 3");
  EXPECT_TRUE(cache.lookup(7, "degree 1").has_value());
  EXPECT_FALSE(cache.lookup(8, "degree 1").has_value());
}

TEST(GraphCatalog, NamesEpochsAndRefCounts) {
  const auto a = make_artifacts(24, 0.3, 17, "service_catalog");
  GraphCatalog catalog;
  auto first = catalog.open("g", spec_for(a));
  EXPECT_EQ(catalog.names(), std::vector<std::string>{"g"});
  EXPECT_EQ(catalog.external_refs("g"), 1u);
  {
    auto handle = catalog.get("g");
    EXPECT_EQ(handle.get(), first.get());
    EXPECT_EQ(catalog.external_refs("g"), 2u);
  }
  EXPECT_EQ(catalog.external_refs("g"), 1u);

  // Reopening bumps the epoch; the old handle stays valid and answers.
  auto second = catalog.open("g", spec_for(a));
  EXPECT_GT(second->epoch(), first->epoch());
  EXPECT_NE(second.get(), first.get());
  QueryEngine old_engine(first);
  EXPECT_TRUE(old_engine.execute_line("degree 0").starts_with("degree 0:"));

  EXPECT_TRUE(catalog.close("g"));
  EXPECT_FALSE(catalog.close("g"));
  EXPECT_TRUE(catalog.names().empty());
  // Entries owned only by handles still serve queries.
  QueryEngine engine(second);
  EXPECT_TRUE(engine.execute_line("degree 0").starts_with("degree 0:"));

  // Mismatched artifacts are rejected whole.
  const auto b = make_artifacts(25, 0.3, 18, "service_catalog_b");
  GraphSpec bad = spec_for(a);
  bad.cliques_path = b.gsbc;  // universe 25 != graph order 24
  EXPECT_THROW(catalog.open("bad", bad), std::runtime_error);
}

TEST(Serve, StreamSessionIsByteReproducibleAcrossThreadCounts) {
  const auto a = make_artifacts(40, 0.3, 23, "service_stream");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));

  std::string script;
  script += "ping\n";
  for (const auto& line : mixed_workload(a.graph)) script += line + '\n';
  script += "shutdown\n";
  script += "degree 1\n";  // after shutdown: still answered (drain), then stop

  std::string reference;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    std::istringstream in(script);
    std::ostringstream out;
    ServeOptions options;
    options.threads = threads;
    const auto stats = serve_stream(entry, in, out, options);
    EXPECT_TRUE(stats.shutdown_requested);
    EXPECT_GT(stats.requests, 0u);
    if (threads == 1) {
      reference = out.str();
      EXPECT_NE(reference.find("ok pong\n"), std::string::npos);
      EXPECT_NE(reference.find("ok shutdown\n"), std::string::npos);
    } else {
      EXPECT_EQ(out.str(), reference) << "threads " << threads;
    }
  }
}

TEST(Serve, StreamSessionBytesAreIdenticalWithMetricsOnAndOff) {
  // The instrumentation contract: enabling metrics and tracing changes no
  // query response byte.  (The `stats` request is excluded — uptime and
  // RSS are nondeterministic by design.)
  const auto a = make_artifacts(36, 0.3, 31, "service_stream_obs");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));

  std::string script = "ping\n";
  for (const auto& line : mixed_workload(a.graph)) script += line + '\n';
  script += "shutdown\n";

  auto run = [&] {
    std::istringstream in(script);
    std::ostringstream out;
    ServeOptions options;
    options.threads = 2;
    serve_stream(entry, in, out, options);
    return out.str();
  };
  const std::string reference = run();
  std::string instrumented;
  {
    ScopedObservability obs_on;
    obs::Tracer::global().set_slow_log_micros(1);  // log every request too
    instrumented = run();
  }
  EXPECT_EQ(instrumented, reference);
}

TEST(Serve, StreamStatsLineCarriesUptimeAndRss) {
  const auto a = make_artifacts(24, 0.3, 37, "service_stream_stats");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  std::istringstream in("stats\nshutdown\n");
  std::ostringstream out;
  serve_stream(entry, in, out, {});
  const std::string output = out.str();
  EXPECT_NE(output.find("ok stats: requests="), std::string::npos) << output;
  EXPECT_NE(output.find(" uptime_seconds="), std::string::npos) << output;
  EXPECT_NE(output.find(" rss_bytes="), std::string::npos) << output;
}

TEST(Serve, MetricsRequestIsRejectedWhenDisabled) {
  const auto a = make_artifacts(24, 0.3, 53, "service_stream_obs_off");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  std::istringstream in("metrics\nshutdown\n");
  std::ostringstream out;
  serve_stream(entry, in, out, {});
  EXPECT_NE(out.str().find("error: metrics disabled (serve with --metrics)"),
            std::string::npos)
      << out.str();
}

TEST(Serve, MetricsRequestRendersPromOverStream) {
  ScopedObservability obs_on;
  const auto a = make_artifacts(24, 0.3, 59, "service_stream_obs_on");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  std::istringstream in("degree 1\nmetrics\nmetrics json\nshutdown\n");
  std::ostringstream out;
  serve_stream(entry, in, out, {});
  std::istringstream lines(out.str());
  std::string degree_line, prom_line, json_line;
  std::getline(lines, degree_line);
  std::getline(lines, prom_line);
  std::getline(lines, json_line);
  ASSERT_TRUE(prom_line.starts_with("ok metrics prom ")) << prom_line;
  const std::string text =
      obs::unescape_multiline(prom_line.substr(sizeof("ok metrics prom ") - 1));
  EXPECT_NE(text.find("# TYPE gsb_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("gsb_requests_total{transport=\"stream\"}"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  ASSERT_TRUE(json_line.starts_with("ok metrics json {")) << json_line;
  EXPECT_NE(json_line.find("\"counters\""), std::string::npos);
}

TEST(Serve, ProfileCapturesBoundedWindowOverStream) {
  const auto a = make_artifacts(24, 0.3, 61, "service_stream_profile");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  std::istringstream in(
      "profile\nprofile start\ndegree 1\ndegree 2\nprofile stop\n"
      "profile bogus\nshutdown\n");
  std::ostringstream out;
  serve_stream(entry, in, out, {});
  std::istringstream lines(out.str());
  std::string status, started, d1, d2, stopped, bogus;
  std::getline(lines, status);
  std::getline(lines, started);
  std::getline(lines, d1);
  std::getline(lines, d2);
  std::getline(lines, stopped);
  std::getline(lines, bogus);
  EXPECT_EQ(status, "ok profile: enabled=0 events=0 dropped=0");
  EXPECT_EQ(started, "ok profile started");
  ASSERT_TRUE(stopped.starts_with("ok profile {")) << stopped;
  EXPECT_NE(stopped.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(stopped.find("\"cat\":\"request\""), std::string::npos);
  EXPECT_NE(stopped.find("\"name\":\"degree 1\""), std::string::npos);
  EXPECT_EQ(stopped.find('\n'), std::string::npos);  // one-line payload
  EXPECT_TRUE(bogus.starts_with("error: unknown profile verb")) << bogus;
  EXPECT_FALSE(obs::TimelineJournal::global().enabled());  // stop disables
  obs::TimelineJournal::global().reset();
}

TEST(Serve, StreamSessionBytesAreIdenticalWithTimelineOnAndOff) {
  const auto a = make_artifacts(36, 0.3, 67, "service_stream_timeline");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  std::string script = "ping\n";
  for (const auto& line : mixed_workload(a.graph)) script += line + '\n';
  script += "shutdown\n";
  auto run = [&] {
    std::istringstream in(script);
    std::ostringstream out;
    ServeOptions options;
    options.threads = 2;
    serve_stream(entry, in, out, options);
    return out.str();
  };
  const std::string reference = run();
  std::string profiled;
  {
    ScopedTimeline timeline_on;
    profiled = run();
    EXPECT_FALSE(obs::TimelineJournal::global().snapshot().events.empty());
  }
  EXPECT_EQ(profiled, reference);
}

#if GSB_TEST_UNIX_SOCKETS
TEST(Serve, UnixSocketSessionAnswersAndShutsDown) {
  const auto a = make_artifacts(32, 0.3, 29, "service_socket");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  const std::string socket_path = temp_path("service_socket.sock");
  std::remove(socket_path.c_str());

  ServeOptions options;
  options.threads = 2;
  ServeStats stats;
  std::thread server([&] {
    stats = serve_unix_socket(entry, socket_path, options);
  });

  // Connect (retrying while the server binds), run one session.
  int fd = -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());
  auto connect_client = [&]() -> int {
    for (int attempt = 0; attempt < 100; ++attempt) {
      const int client = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (client < 0) return -1;
      if (::connect(client, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return client;
      }
      ::close(client);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
  };

  // First connection: a final request with no trailing newline, delivered
  // by half-closing the write side — it must still be answered.
  const int eof_fd = connect_client();
  ASSERT_GE(eof_fd, 0) << "could not connect to " << socket_path;
  const std::string unterminated = "degree 3";
  ASSERT_EQ(::write(eof_fd, unterminated.data(), unterminated.size()),
            static_cast<ssize_t>(unterminated.size()));
  ::shutdown(eof_fd, SHUT_WR);
  std::string eof_response;
  char eof_chunk[256];
  while (true) {
    const ssize_t n = ::read(eof_fd, eof_chunk, sizeof(eof_chunk));
    if (n <= 0) break;
    eof_response.append(eof_chunk, static_cast<std::size_t>(n));
  }
  ::close(eof_fd);

  fd = connect_client();
  ASSERT_GE(fd, 0) << "could not connect to " << socket_path;

  // A query pipelined *after* shutdown in the same write must still be
  // answered before the connection closes (drain-then-stop, matching the
  // stream transport).
  const std::string request = "ping\ndegree 3\nneighbors 3\nshutdown\ndegree 5\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[512];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();

  QueryEngine reference(entry);
  EXPECT_EQ(eof_response, reference.execute_line("degree 3") + "\n");
  EXPECT_EQ(response, "ok pong\n" + reference.execute_line("degree 3") +
                          "\n" + reference.execute_line("neighbors 3") +
                          "\nok shutdown\n" +
                          reference.execute_line("degree 5") + "\n");
  EXPECT_TRUE(stats.shutdown_requested);
  EXPECT_EQ(stats.connections, 2u);
  EXPECT_EQ(stats.requests, 6u);
}

/// Connects to a Unix-socket server, retrying while it binds.
int connect_unix_retrying(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

// Regression: a client that floods requests and closes without reading
// used to kill the whole server with SIGPIPE (raw ::write without
// MSG_NOSIGNAL).  Now only that connection dies; the server keeps
// serving.
TEST(Serve, SurvivesClientDisconnectMidResponse) {
  const auto a = make_artifacts(48, 0.35, 31, "service_midrop");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  const std::string socket_path = temp_path("service_midrop.sock");
  std::remove(socket_path.c_str());

  ServeOptions options;
  options.threads = 2;
  ServeStats stats;
  std::thread server([&] {
    stats = serve_unix_socket(entry, socket_path, options);
  });

  // Flood: thousands of pipelined requests, then an immediate close —
  // never reading a byte, so the server's writes hit a dead peer.
  const int flood_fd = connect_unix_retrying(socket_path);
  ASSERT_GE(flood_fd, 0) << "could not connect to " << socket_path;
  std::string flood;
  for (int i = 0; i < 5000; ++i) {
    flood += "neighbors " + std::to_string(i % 48) + "\n";
  }
  // A partial write is fine — the point is closing with responses owed.
  (void)::write(flood_fd, flood.data(), flood.size());
  ::close(flood_fd);

  // The server must still answer a fresh connection.
  const int fd = connect_unix_retrying(socket_path);
  ASSERT_GE(fd, 0);
  const std::string request = "ping\nshutdown\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[256];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();
  EXPECT_EQ(response, "ok pong\nok shutdown\n");
  EXPECT_TRUE(stats.shutdown_requested);
}

namespace {
void noop_signal_handler(int) {}
}  // namespace

// Regression: the serve loop's signal handlers are installed without
// SA_RESTART, so any signal makes blocked poll/read/send return EINTR.
// That used to abort the connection mid-session, silently dropping or
// truncating responses; now the loops retry and every response arrives
// complete and byte-identical.
TEST(Serve, SignalsDuringBlockedIoDropNoResponses) {
  const auto a = make_artifacts(40, 0.35, 37, "service_eintr");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  const std::string socket_path = temp_path("service_eintr.sock");
  std::remove(socket_path.c_str());

  // SA_RESTART deliberately absent, matching the CLI's serve handlers.
  struct sigaction action{};
  action.sa_handler = noop_signal_handler;
  sigemptyset(&action.sa_mask);
  struct sigaction previous{};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  ServeOptions options;
  options.threads = 2;
  ServeStats stats;
  // The server thread (and its per-connection threads) keep SIGUSR1
  // unblocked; the test thread blocks it before spawning the signaler, so
  // every kill() below lands on a server thread's blocked syscall.
  std::thread server([&] {
    stats = serve_unix_socket(entry, socket_path, options);
  });
  sigset_t usr1;
  sigemptyset(&usr1);
  sigaddset(&usr1, SIGUSR1);
  ASSERT_EQ(pthread_sigmask(SIG_BLOCK, &usr1, nullptr), 0);

  std::atomic<bool> stop_signals{false};
  std::thread signaler([&] {
    while (!stop_signals.load(std::memory_order_relaxed)) {
      ::kill(::getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  const int fd = connect_unix_retrying(socket_path);
  ASSERT_GE(fd, 0) << "could not connect to " << socket_path;
  std::vector<std::string> lines;
  for (int round = 0; round < 3; ++round) {
    for (const auto& line : mixed_workload(a.graph)) lines.push_back(line);
  }
  std::string request;
  for (const auto& line : lines) request += line + '\n';
  request += "shutdown\n";
  std::size_t sent = 0;  // the raw client retries its own EINTRs
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + sent, request.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();
  stop_signals.store(true, std::memory_order_relaxed);
  signaler.join();
  ASSERT_EQ(pthread_sigmask(SIG_UNBLOCK, &usr1, nullptr), 0);
  ::sigaction(SIGUSR1, &previous, nullptr);

  QueryEngine reference(entry);
  std::string expected;
  for (const auto& line : lines) {
    expected += reference.execute_line(line) + '\n';
  }
  expected += "ok shutdown\n";
  EXPECT_EQ(response, expected);
  EXPECT_TRUE(stats.shutdown_requested);
  EXPECT_EQ(stats.requests, lines.size() + 1);
}
TEST(Serve, UnixSocketAnswersMetricsRequests) {
  ScopedObservability obs_on;
  const auto a = make_artifacts(28, 0.3, 67, "service_socket_obs");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  const std::string socket_path = temp_path("service_socket_obs.sock");
  std::remove(socket_path.c_str());

  ServeStats stats;
  std::thread server([&] {
    stats = serve_unix_socket(entry, socket_path, {});
  });
  const int fd = connect_unix_retrying(socket_path);
  ASSERT_GE(fd, 0) << "could not connect to " << socket_path;
  const std::string request = "degree 2\nmetrics prom\nmetrics json\nshutdown\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();

  std::istringstream lines(response);
  std::string degree_line, prom_line, json_line;
  std::getline(lines, degree_line);
  std::getline(lines, prom_line);
  std::getline(lines, json_line);
  ASSERT_TRUE(prom_line.starts_with("ok metrics prom ")) << prom_line;
  const std::string text =
      obs::unescape_multiline(prom_line.substr(sizeof("ok metrics prom ") - 1));
  EXPECT_NE(text.find("gsb_requests_total{transport=\"unix\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gsb_socket_write_microseconds_bucket"),
            std::string::npos);
  ASSERT_TRUE(json_line.starts_with("ok metrics json {")) << json_line;
  EXPECT_TRUE(stats.shutdown_requested);
}
#endif  // GSB_TEST_UNIX_SOCKETS

TEST(WireProtocol, FramesRoundTripAndRejectMalformedInput) {
  std::string buf;
  wire::encode_request(buf, 42, "degree 7");
  wire::encode_request(buf, 43, "");
  std::size_t consumed = 0;
  std::uint64_t id = 0;
  std::string payload;
  ASSERT_EQ(wire::decode_request(buf, consumed, id, payload),
            wire::DecodeResult::kFrame);
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(payload, "degree 7");
  buf.erase(0, consumed);
  ASSERT_EQ(wire::decode_request(buf, consumed, id, payload),
            wire::DecodeResult::kFrame);
  EXPECT_EQ(id, 43u);
  EXPECT_TRUE(payload.empty());
  buf.erase(0, consumed);
  EXPECT_EQ(wire::decode_request(buf, consumed, id, payload),
            wire::DecodeResult::kNeedMore);

  std::string response;
  wire::encode_response(response, wire::Status::kBusy, 7, "busy: x");
  // Byte-by-byte prefixes of a valid frame all say "need more".
  for (std::size_t len = 0; len < response.size(); ++len) {
    wire::Status status{};
    EXPECT_EQ(wire::decode_response(std::string_view(response).substr(0, len),
                                    consumed, status, id, payload),
              wire::DecodeResult::kNeedMore)
        << "prefix " << len;
  }
  wire::Status status{};
  ASSERT_EQ(wire::decode_response(response, consumed, status, id, payload),
            wire::DecodeResult::kFrame);
  EXPECT_EQ(status, wire::Status::kBusy);
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(payload, "busy: x");

  EXPECT_EQ(wire::decode_request("degree 7\n", consumed, id, payload),
            wire::DecodeResult::kMalformed);  // line bytes are not a frame
  std::string oversized;
  wire::encode_request(oversized, 1, "x");
  oversized[9] = '\xff';  // length field far beyond kMaxPayloadBytes
  oversized[10] = '\xff';
  oversized[11] = '\xff';
  oversized[12] = '\xff';
  EXPECT_EQ(wire::decode_request(oversized, consumed, id, payload),
            wire::DecodeResult::kMalformed);

  EXPECT_EQ(wire::status_for_response("degree 3: 4"), wire::Status::kOk);
  EXPECT_EQ(wire::status_for_response("error: nope"), wire::Status::kError);
  EXPECT_EQ(wire::status_for_response("busy: later"), wire::Status::kBusy);
}

#if defined(__linux__)

/// One TCP server on an ephemeral port, serving on a background thread.
struct TcpFixture {
  GraphCatalog catalog;
  std::shared_ptr<const GraphEntry> entry;
  std::optional<TcpServer> server;
  std::thread thread;
  TcpServeStats stats;

  TcpFixture(const Artifacts& a, TcpServerOptions options = {},
             bool with_reload = false, const GraphSpec* spec = nullptr) {
    entry = catalog.open("g", spec_for(a));
    if (with_reload) {
      GraphSpec reload_spec = spec != nullptr ? *spec : spec_for(a);
      options.reload = [this, reload_spec] {
        return catalog.open("g", reload_spec);
      };
    }
    server.emplace(entry, "127.0.0.1:0", options);
    thread = std::thread([this] { stats = server->serve(); });
  }

  [[nodiscard]] std::string address() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }

  void join() { thread.join(); }

  ~TcpFixture() {
    if (thread.joinable()) {
      try {
        ServiceClient::connect_tcp(address()).request("shutdown");
      } catch (const std::exception&) {
      }
      thread.join();
    }
  }
};

TEST(TcpServe, LineProtocolMatchesBatchAcrossThreadCountsAndReportsStats) {
  const auto a = make_artifacts(48, 0.3, 41, "service_tcp_line");
  const auto lines = mixed_workload(a.graph);

  GraphCatalog reference_catalog;
  auto reference_entry = reference_catalog.open("g", spec_for(a));
  BatchOptions sequential;
  sequential.threads = 1;
  const auto reference = execute_batch(reference_entry, lines, sequential);

  for (const std::size_t threads : {1u, 4u}) {
    TcpServerOptions options;
    options.threads = threads;
    TcpFixture fx(a, options);

    auto client = ServiceClient::connect_tcp(fx.address());
    EXPECT_EQ(client.request("ping"), "ok pong");
    EXPECT_EQ(client.request_pipelined(lines), reference.responses)
        << "threads " << threads;

    const std::string stats_line = client.request("stats");
    EXPECT_TRUE(stats_line.starts_with("ok stats:")) << stats_line;
    EXPECT_NE(stats_line.find(" backlog="), std::string::npos) << stats_line;
    EXPECT_NE(stats_line.find(" accept_errors=0"), std::string::npos)
        << stats_line;
    EXPECT_NE(stats_line.find(" epoch="), std::string::npos) << stats_line;
    EXPECT_NE(stats_line.find(" uptime_seconds="), std::string::npos)
        << stats_line;
    EXPECT_NE(stats_line.find(" rss_bytes="), std::string::npos)
        << stats_line;

    EXPECT_EQ(client.request("shutdown"), "ok shutdown");
    fx.join();
    EXPECT_TRUE(fx.stats.shutdown_requested);
    EXPECT_EQ(fx.stats.requests, lines.size() + 3);
    EXPECT_EQ(fx.stats.protocol_errors, 0u);
  }
}

TEST(TcpServe, BinaryPipeliningMatchesLineBytesAndPreservesIdOrder) {
  const auto a = make_artifacts(44, 0.3, 43, "service_tcp_bin");
  const auto lines = mixed_workload(a.graph);

  GraphCatalog reference_catalog;
  auto reference_entry = reference_catalog.open("g", spec_for(a));
  BatchOptions sequential;
  sequential.threads = 1;
  const auto reference = execute_batch(reference_entry, lines, sequential);

  TcpServerOptions options;
  options.threads = 3;
  TcpFixture fx(a, options);

  auto client = ServiceClient::connect_tcp(fx.address());
  const auto responses = client.call_pipelined(lines);
  ASSERT_EQ(responses.size(), lines.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].id, i + 1) << "response " << i;
    EXPECT_EQ(responses[i].payload, reference.responses[i]) << lines[i];
    EXPECT_EQ(responses[i].status,
              reference.responses[i].starts_with("error:")
                  ? wire::Status::kError
                  : wire::Status::kOk)
        << lines[i];
  }

  // Control requests answer on the binary framing too.
  const auto pong = client.call_pipelined({"ping"});
  ASSERT_EQ(pong.size(), 1u);
  EXPECT_EQ(pong[0].payload, "ok pong");

  EXPECT_EQ(client.call_pipelined({"shutdown"})[0].payload, "ok shutdown");
  fx.join();
  EXPECT_EQ(fx.stats.protocol_errors, 0u);
}

TEST(TcpServe, AdmissionControlAnswersTypedBusyInFifoOrder) {
  const auto a = make_artifacts(40, 0.3, 47, "service_tcp_busy");
  TcpServerOptions options;
  options.threads = 1;
  options.max_pipeline = 1;  // one executing + one queued, rest -> busy
  TcpFixture fx(a, options);

  QueryEngine reference(fx.entry);
  const std::string expected = reference.execute_line("top-hubs 5");

  auto client = ServiceClient::connect_tcp(fx.address());
  const std::size_t burst = 200;
  const auto responses = client.call_pipelined(
      std::vector<std::string>(burst, "top-hubs 5"));
  ASSERT_EQ(responses.size(), burst);
  std::size_t busy = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].id, i + 1) << "busy responses must keep FIFO order";
    if (responses[i].status == wire::Status::kBusy) {
      ++busy;
      EXPECT_TRUE(responses[i].payload.starts_with("busy:"))
          << responses[i].payload;
    } else {
      EXPECT_EQ(responses[i].status, wire::Status::kOk);
      EXPECT_EQ(responses[i].payload, expected);
    }
  }
  EXPECT_GT(busy, 0u);
  EXPECT_LT(busy, burst);  // the accepted requests all answered correctly

  // The first byte committed this connection to binary framing for good.
  EXPECT_EQ(client.call_pipelined({"shutdown"})[0].payload, "ok shutdown");
  fx.join();
  EXPECT_EQ(fx.stats.busy_rejections, busy);
}

TEST(TcpServe, HotReloadUnderConcurrentLoadMixesNoEpochs) {
  const auto a = make_artifacts(44, 0.3, 53, "service_tcp_reload");
  const auto lines = mixed_workload(a.graph);

  GraphCatalog reference_catalog;
  auto reference_entry = reference_catalog.open("g", spec_for(a));
  BatchOptions sequential;
  sequential.threads = 1;
  const auto reference = execute_batch(reference_entry, lines, sequential);

  ResultCache cache(8u << 20);
  TcpServerOptions options;
  options.threads = 4;
  options.cache = &cache;
  TcpFixture fx(a, options, /*with_reload=*/true);

  // Four clients hammer the full workload while reloads swap epochs
  // underneath them; every response must stay byte-identical.
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      auto client = ServiceClient::connect_tcp(fx.address());
      for (int round = 0; round < 6; ++round) {
        const auto responses = client.request_pipelined(lines);
        if (responses != reference.responses) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  auto control = ServiceClient::connect_tcp(fx.address());
  std::uint64_t last_epoch = 0;
  for (int r = 0; r < 5; ++r) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::string response = control.request("reload");
    ASSERT_TRUE(response.starts_with("ok reload epoch=")) << response;
    const std::uint64_t epoch =
        std::stoull(response.substr(std::strlen("ok reload epoch=")));
    EXPECT_GT(epoch, last_epoch);
    last_epoch = epoch;
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);

  control.request("shutdown");
  fx.join();
  EXPECT_EQ(fx.stats.reloads, 5u);
  EXPECT_EQ(fx.stats.protocol_errors, 0u);
  EXPECT_EQ(fx.stats.busy_rejections, 0u);
}

TEST(TcpServe, SurvivesClientDisconnectMidResponse) {
  const auto a = make_artifacts(48, 0.35, 59, "service_tcp_drop");
  TcpServerOptions options;
  options.threads = 2;
  TcpFixture fx(a, options);

  {
    // Flood pipelined requests and vanish without reading a byte.
    auto flood = ServiceClient::connect_tcp(fx.address());
    for (int i = 0; i < 5000; ++i) {
      flood.send("neighbors " + std::to_string(i % 48));
    }
    try {
      flood.flush();  // the server may drop us mid-flood — that's the point
    } catch (const std::exception&) {
    }
    flood.close();
  }

  // The server keeps serving fresh connections with correct bytes.
  QueryEngine reference(fx.entry);
  auto client = ServiceClient::connect_tcp(fx.address());
  EXPECT_EQ(client.request("degree 3"), reference.execute_line("degree 3"));
  EXPECT_EQ(client.request("shutdown"), "ok shutdown");
  fx.join();
  EXPECT_TRUE(fx.stats.shutdown_requested);
}

TEST(TcpServe, MalformedBinaryFrameClosesOnlyThatConnection) {
  const auto a = make_artifacts(32, 0.3, 61, "service_tcp_malformed");
  TcpFixture fx(a);

  {
    // Hand-crafted garbage: the 0x01 sniff byte commits the connection
    // to binary framing, then the length field claims ~4 GB — far past
    // the 64 MB frame bound, a protocol error.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.server->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    std::string junk(1, '\x01');
    junk.append(8, '\x00');  // request id
    junk.append(4, '\xff');  // payload length 0xffffffff
    ASSERT_EQ(::write(fd, junk.data(), junk.size()),
              static_cast<ssize_t>(junk.size()));
    // The server answers one typed error frame, then closes this
    // connection (EOF) without touching any other.
    std::string raw;
    char chunk[256];
    while (true) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;
      raw.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    std::size_t consumed = 0;
    wire::Status status{};
    std::uint64_t id = 0;
    std::string payload;
    ASSERT_EQ(wire::decode_response(raw, consumed, status, id, payload),
              wire::DecodeResult::kFrame);
    EXPECT_EQ(status, wire::Status::kError);
    EXPECT_EQ(payload, "error: malformed frame");
    EXPECT_EQ(consumed, raw.size());  // nothing after the error frame
  }

  auto probe = ServiceClient::connect_tcp(fx.address());
  EXPECT_EQ(probe.request("ping"), "ok pong");
  EXPECT_EQ(probe.request("shutdown"), "ok shutdown");
  fx.join();
  EXPECT_EQ(fx.stats.protocol_errors, 1u);
}

TEST(TcpServe, MetricsOnLeavesResponsesByteIdenticalAndScrapes) {
  const auto a = make_artifacts(44, 0.3, 71, "service_tcp_obs");
  const auto lines = mixed_workload(a.graph);

  // Reference computed with instrumentation off.
  GraphCatalog reference_catalog;
  auto reference_entry = reference_catalog.open("g", spec_for(a));
  BatchOptions sequential;
  sequential.threads = 1;
  const auto reference = execute_batch(reference_entry, lines, sequential);

  ScopedObservability obs_on;
  TcpServerOptions options;
  options.threads = 3;
  TcpFixture fx(a, options);

  auto client = ServiceClient::connect_tcp(fx.address());
  EXPECT_EQ(client.request_pipelined(lines), reference.responses)
      << "metrics on changed response bytes";

  // Line-protocol scrape: all three formats answer.
  const std::string prom = client.request("metrics");
  ASSERT_TRUE(prom.starts_with("ok metrics prom ")) << prom;
  const std::string text =
      obs::unescape_multiline(prom.substr(sizeof("ok metrics prom ") - 1));
  EXPECT_NE(text.find("# TYPE gsb_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("gsb_requests_total{transport=\"tcp\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gsb_request_duration_microseconds_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("gsb_uptime_seconds"), std::string::npos);
  const std::string json = client.request("metrics json");
  ASSERT_TRUE(json.starts_with("ok metrics json {")) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  const std::string traces = client.request("metrics traces");
  EXPECT_TRUE(traces.starts_with("ok metrics traces [")) << traces;

  // The binary framing carries the identical payload with kOk status (on
  // its own connection: the first byte commits a connection's framing).
  auto binary_client = ServiceClient::connect_tcp(fx.address());
  const auto frames = binary_client.call_pipelined({"metrics json"});
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].status, wire::Status::kOk);
  EXPECT_TRUE(frames[0].payload.starts_with("ok metrics json {"));

  const std::string unknown = client.request("metrics xml");
  EXPECT_TRUE(unknown.starts_with("error: unknown metrics format"))
      << unknown;

  EXPECT_EQ(client.request("shutdown"), "ok shutdown");
  fx.join();
  EXPECT_EQ(fx.stats.protocol_errors, 0u);
}

TEST(TcpServe, MetricsRequestIsRejectedWhenDisabled) {
  const auto a = make_artifacts(24, 0.3, 73, "service_tcp_obs_off");
  TcpFixture fx(a);
  auto client = ServiceClient::connect_tcp(fx.address());
  EXPECT_EQ(client.request("metrics"),
            "error: metrics disabled (serve with --metrics)");
  EXPECT_EQ(client.request("shutdown"), "ok shutdown");
  fx.join();
}

TEST(TcpServe, ProfileWindowLeavesResponsesByteIdenticalOnBothProtocols) {
  const auto a = make_artifacts(44, 0.3, 79, "service_tcp_profile");
  const auto lines = mixed_workload(a.graph);

  // Reference computed with profiling off.
  GraphCatalog reference_catalog;
  auto reference_entry = reference_catalog.open("g", spec_for(a));
  BatchOptions sequential;
  sequential.threads = 1;
  const auto reference = execute_batch(reference_entry, lines, sequential);

  TcpServerOptions options;
  options.threads = 3;
  TcpFixture fx(a, options);

  auto client = ServiceClient::connect_tcp(fx.address());
  EXPECT_EQ(client.request("profile start"), "ok profile started");
  EXPECT_EQ(client.request_pipelined(lines), reference.responses)
      << "profiling changed response bytes";
  const std::string status = client.request("profile");
  EXPECT_TRUE(status.starts_with("ok profile: enabled=1 events=")) << status;
  const std::string trace = client.request("profile stop");
  ASSERT_TRUE(trace.starts_with("ok profile {")) << trace.substr(0, 80);
  EXPECT_NE(trace.find("\"cat\":\"request\""), std::string::npos);
  EXPECT_NE(trace.find("tcp-worker-"), std::string::npos);

  // The binary framing carries the identical control payloads (its own
  // connection: the first byte commits a connection's framing), and the
  // capture window repeats cleanly.
  auto binary_client = ServiceClient::connect_tcp(fx.address());
  const auto frames = binary_client.call_pipelined(
      {"profile start", lines.front(), "profile stop"});
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].status, wire::Status::kOk);
  EXPECT_EQ(frames[0].payload, "ok profile started");
  EXPECT_EQ(frames[1].payload, reference.responses.front());
  EXPECT_TRUE(frames[2].payload.starts_with("ok profile {"))
      << frames[2].payload.substr(0, 80);

  EXPECT_EQ(client.request("shutdown"), "ok shutdown");
  fx.join();
  EXPECT_EQ(fx.stats.protocol_errors, 0u);
  obs::TimelineJournal::global().reset();
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace gsb::service
