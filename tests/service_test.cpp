// Tests for the graph query service: catalog ref-counting and epochs, the
// .gsbci clique index (indexed answers == full-stream rescans, and indexed
// queries never touch the rest of the stream), byte-identical results with
// the cache on/off and at every thread count, LRU eviction under the byte
// budget, and the serve loop's stream/socket transports.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/clique_stats.h"
#include "analysis/hubs.h"
#include "analysis/paraclique.h"
#include "core/bron_kerbosch.h"
#include "core/clique.h"
#include "graph/transforms.h"
#include "service/batch_executor.h"
#include "service/clique_index.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/query_engine.h"
#include "service/result_cache.h"
#include "service/server.h"
#include "storage/clique_stream.h"
#include "storage/gsbg_writer.h"
#include "tests/test_helpers.h"

#if defined(__unix__) || defined(__APPLE__)
#define GSB_TEST_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace gsb::service {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// Graph + clique stream + sidecar index on disk for one seeded graph.
struct Artifacts {
  graph::Graph graph;
  std::string gsbg;
  std::string gsbc;
  std::string gsbci;

  ~Artifacts() {
    std::remove(gsbg.c_str());
    std::remove(gsbc.c_str());
    std::remove(gsbci.c_str());
  }
};

Artifacts make_artifacts(std::size_t n, double p, std::uint64_t seed,
                         const std::string& stem) {
  Artifacts a;
  a.graph = test::random_graph(n, p, seed);
  a.gsbg = temp_path(stem + ".gsbg");
  a.gsbc = temp_path(stem + ".gsbc");
  a.gsbci = default_index_path(a.gsbc);
  storage::write_gsbg_file(a.graph, a.gsbg);
  storage::GsbcWriter writer(a.gsbc, a.graph.order());
  core::degeneracy_bk(a.graph, [&](std::span<const graph::VertexId> clique) {
    writer.append(clique);
  });
  writer.close();
  build_clique_index(a.gsbc, a.gsbci);
  return a;
}

GraphSpec spec_for(const Artifacts& a, bool with_index = true) {
  GraphSpec spec;
  spec.graph_path = a.gsbg;
  spec.cliques_path = a.gsbc;
  spec.probe_index = with_index;
  return spec;
}

/// A mixed workload touching every query kind (plus deliberate errors).
std::vector<std::string> mixed_workload(const graph::Graph& g) {
  std::vector<std::string> lines;
  const auto n = static_cast<graph::VertexId>(g.order());
  for (graph::VertexId v = 0; v < n; v += 3) {
    lines.push_back("neighbors " + std::to_string(v));
    lines.push_back("degree " + std::to_string(v));
    lines.push_back("cliques-containing " + std::to_string(v));
    lines.push_back("kcore-membership 3 " + std::to_string(v));
    if (v + 1 < n) {
      lines.push_back("common-neighbors " + std::to_string(v + 1) + " " +
                      std::to_string(v));
      lines.push_back("induced-subgraph " + std::to_string(v) + " " +
                      std::to_string(v + 1) + " " + std::to_string((v + 7) % n));
    }
  }
  lines.push_back("top-hubs 5");
  lines.push_back("neighbors " + std::to_string(n));  // out of range
  lines.push_back("no-such-query 1");                 // parse error
  lines.push_back("degree 0");                        // repeat -> cache hit
  lines.push_back("degree 0");
  return lines;
}

TEST(Query, ParsesAndCanonicalizes) {
  EXPECT_EQ(canonical_query(parse_query("  common-neighbors 9   2 ")),
            "common-neighbors 2 9");
  EXPECT_EQ(canonical_query(parse_query("induced-subgraph 7 3 3 1")),
            "induced-subgraph 1 3 7");
  EXPECT_EQ(canonical_query(parse_query("paraclique-expand 2 5 1 5")),
            "paraclique-expand 2 1 5");
  EXPECT_EQ(canonical_query(parse_query("kcore-membership 4 11")),
            "kcore-membership 4 11");
  EXPECT_EQ(canonical_query(parse_query("top-hubs 10")), "top-hubs 10");
  EXPECT_THROW(parse_query(""), std::runtime_error);
  EXPECT_THROW(parse_query("degree"), std::runtime_error);
  EXPECT_THROW(parse_query("degree 1 2"), std::runtime_error);
  EXPECT_THROW(parse_query("degree -3"), std::runtime_error);
  EXPECT_THROW(parse_query("common-neighbors 4 4"), std::runtime_error);
  EXPECT_THROW(parse_query("top-hubs 0"), std::runtime_error);
  EXPECT_THROW(parse_query("frobnicate 1"), std::runtime_error);
}

TEST(QueryEngine, AnswersMatchDirectComputation) {
  const auto a = make_artifacts(40, 0.3, 7, "service_direct");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  QueryEngine engine(entry);

  const graph::GraphView g(a.graph);
  std::string expected = "neighbors 5:";
  for (const graph::VertexId w : g.neighbor_list(5)) {
    expected += ' ' + std::to_string(w);
  }
  EXPECT_EQ(engine.execute_line("neighbors 5"), expected);
  EXPECT_EQ(engine.execute_line("degree 5"),
            "degree 5: " + std::to_string(g.degree(5)));

  std::string common = "common-neighbors 2 9:";
  for (const graph::VertexId w : g.neighbor_list(2)) {
    if (g.has_edge(9, w)) common += ' ' + std::to_string(w);
  }
  EXPECT_EQ(engine.execute_line("common-neighbors 9 2"), common);

  const auto mask = graph::kcore_mask(g, 3);
  EXPECT_EQ(engine.execute_line("kcore-membership 3 5"),
            std::string("kcore-membership 3 5: ") + (mask.test(5) ? "1" : "0"));

  const auto hubs = analysis::top_hubs(
      g, analysis::vertex_participation(
             g.order(),
             [&] {
               core::CliqueCollector collector;
               core::degeneracy_bk(g, collector.callback());
               return collector.cliques();
             }()),
      3);
  std::string hub_line = "top-hubs 3:";
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    hub_line += i == 0 ? " " : "; ";
    hub_line += std::to_string(hubs[i].vertex) +
                " deg=" + std::to_string(hubs[i].degree) +
                " cliques=" + std::to_string(hubs[i].clique_participation);
  }
  EXPECT_EQ(engine.execute_line("top-hubs 3"), hub_line);

  // Errors are responses, not exceptions.
  const auto bad = engine.execute_line("degree 4096");
  EXPECT_TRUE(bad.starts_with("error:")) << bad;
  EXPECT_TRUE(engine.execute_line("bogus").starts_with("error:"));
}

TEST(QueryEngine, ParacliqueExpandMatchesAnalysis) {
  const auto a = make_artifacts(36, 0.35, 11, "service_para");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  QueryEngine engine(entry);
  const graph::GraphView g(a.graph);

  // Seed with a real clique (the largest streamed one).
  core::CliqueCollector collector;
  core::degeneracy_bk(g, collector.callback());
  core::Clique best;
  for (const auto& clique : collector.cliques()) {
    if (clique.size() > best.size()) best = clique;
  }
  ASSERT_GE(best.size(), 2u);

  analysis::ParacliqueOptions options;
  options.glom = 1;
  const auto grown = analysis::grow_paraclique(g, best, options);
  std::string line = "paraclique-expand 1";
  for (const graph::VertexId v : best) line += ' ' + std::to_string(v);
  std::string expected = canonical_query(parse_query(line)) + ":";
  for (const graph::VertexId v : grown.members) {
    expected += ' ' + std::to_string(v);
  }
  EXPECT_EQ(engine.execute_line(line), expected);

  // A non-clique seed is rejected deterministically.
  graph::VertexId u = 0;
  graph::VertexId w = 1;
  bool found = false;
  for (u = 0; u < g.order() && !found; ++u) {
    for (w = u + 1; w < g.order(); ++w) {
      if (!g.has_edge(u, w)) {
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);
  --u;  // undo the loop increment after `found`
  const auto bad = engine.execute_line("paraclique-expand 1 " +
                                       std::to_string(u) + " " +
                                       std::to_string(w));
  EXPECT_TRUE(bad.starts_with("error:")) << bad;
}

TEST(CliqueIndex, IndexedEqualsRescanOn20SeededGraphs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto a = make_artifacts(26 + seed, 0.35, seed,
                                  "service_idx_" + std::to_string(seed));
    GraphCatalog catalog;
    auto indexed = catalog.open("indexed", spec_for(a, true));
    auto rescan = catalog.open("rescan", spec_for(a, false));
    ASSERT_NE(indexed->index(), nullptr);
    ASSERT_EQ(rescan->index(), nullptr);
    QueryEngine indexed_engine(indexed);
    QueryEngine rescan_engine(rescan);
    for (graph::VertexId v = 0; v < a.graph.order(); ++v) {
      const std::string line = "cliques-containing " + std::to_string(v);
      EXPECT_EQ(indexed_engine.execute_line(line),
                rescan_engine.execute_line(line))
          << "seed " << seed << " vertex " << v;
    }
    EXPECT_EQ(indexed_engine.stats().index_queries, a.graph.order());
    EXPECT_EQ(indexed_engine.stats().stream_scans, 0u);
    EXPECT_EQ(rescan_engine.stats().stream_scans, a.graph.order());
  }
}

TEST(CliqueIndex, AnswersWithoutScanningTheFullStream) {
  const auto a = make_artifacts(60, 0.3, 3, "service_noscan");
  auto reader = storage::GsbcReader::open(a.gsbc);
  const std::uint64_t total = reader.clique_count();
  ASSERT_GT(total, 10u);

  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  const CliqueIndex* index = entry->index();
  ASSERT_NE(index, nullptr);

  // Pick a vertex that is in some cliques but far from all of them.
  graph::VertexId v = 0;
  for (; v < a.graph.order(); ++v) {
    const auto count = index->participation(v);
    if (count > 0 && count < total / 2) break;
  }
  ASSERT_LT(v, a.graph.order());

  QueryEngine engine(entry);
  const auto response =
      engine.execute_line("cliques-containing " + std::to_string(v));
  EXPECT_TRUE(response.starts_with("cliques-containing")) << response;
  // Exactly the posting list was decoded — not the remainder of the stream.
  EXPECT_EQ(engine.stats().records_decoded, index->participation(v));
  EXPECT_LT(engine.stats().records_decoded, total);
  EXPECT_EQ(engine.stats().index_queries, 1u);
  EXPECT_EQ(engine.stats().stream_scans, 0u);

  // Participation shortcut: posting lengths == one full stream count.
  auto scan = storage::GsbcReader::open(a.gsbc);
  const auto expected =
      analysis::vertex_participation(a.graph.order(), scan);
  for (graph::VertexId u = 0; u < a.graph.order(); ++u) {
    EXPECT_EQ(index->participation(u), expected[u]) << "vertex " << u;
  }
}

TEST(CliqueIndex, RejectsCorruptionAndStaleness) {
  const auto a = make_artifacts(30, 0.3, 5, "service_idxbad");

  // Truncation: the exact-size check fails loudly.
  const auto bytes = fs::file_size(a.gsbci);
  fs::resize_file(a.gsbci, bytes - 8);
  EXPECT_THROW(CliqueIndex::open(a.gsbci), std::runtime_error);

  // A flipped payload byte — even one leaving every array structurally
  // plausible — is caught by the always-on checksum pass.
  build_clique_index(a.gsbc, a.gsbci);
  {
    std::fstream f(a.gsbci, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(bytes - 3));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(bytes - 3));
    f.write(&byte, 1);
  }
  EXPECT_THROW(CliqueIndex::open(a.gsbci), std::runtime_error);

  // Header counts near 2^64/8 must not wrap the expected-size arithmetic
  // into an accepted (and then out-of-bounds) mapping.
  {
    const std::string crafted = (fs::temp_directory_path() /
                                 "service_idx_crafted.gsbci")
                                    .string();
    std::ofstream f(crafted, std::ios::binary | std::ios::trunc);
    char raw[storage::kGsbciHeaderBytes] = {};
    std::memcpy(raw, storage::kGsbciMagic, sizeof(storage::kGsbciMagic));
    const std::uint32_t version = storage::kGsbciVersion;
    std::memcpy(raw + 8, &version, 4);
    const std::uint64_t huge = (1ull << 61) - 1;  // 8*(huge+0+1+0) wraps to 0
    std::memcpy(raw + 24, &huge, 8);
    const std::uint64_t empty_checksum = storage::Fnv1a{}.digest();
    std::memcpy(raw + 48, &empty_checksum, 8);
    f.write(raw, sizeof(raw));
    f.close();
    EXPECT_THROW(CliqueIndex::open(crafted), std::runtime_error);
    std::remove(crafted.c_str());
  }

  // Stale sidecar: stream rewritten, old index kept -> catalog refuses.
  build_clique_index(a.gsbc, a.gsbci);
  {
    storage::GsbcWriter writer(a.gsbc, a.graph.order());
    writer.append(std::vector<graph::VertexId>{0, 1});
    writer.close();
  }
  GraphCatalog catalog;
  EXPECT_THROW(catalog.open("g", spec_for(a)), std::runtime_error);
  // Without the sidecar the rewritten stream is fine.
  auto entry = catalog.open("g", spec_for(a, false));
  EXPECT_EQ(entry->index(), nullptr);
}

TEST(Batch, CacheOnOffAndThreadCountsAreByteIdentical) {
  const auto a = make_artifacts(48, 0.3, 13, "service_batch");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  const auto lines = mixed_workload(a.graph);

  BatchOptions sequential;
  sequential.threads = 1;
  const auto reference = execute_batch(entry, lines, sequential);
  ASSERT_EQ(reference.responses.size(), lines.size());

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    BatchOptions options;
    options.threads = threads;
    const auto concurrent = execute_batch(entry, lines, options);
    EXPECT_EQ(concurrent.responses, reference.responses)
        << "threads " << threads;

    ResultCache cache(8u << 20);
    options.cache = &cache;
    const auto cold = execute_batch(entry, lines, options);
    EXPECT_EQ(cold.responses, reference.responses)
        << "cold cache, threads " << threads;
    const auto warm = execute_batch(entry, lines, options);
    EXPECT_EQ(warm.responses, reference.responses)
        << "warm cache, threads " << threads;
    // Second pass: every successful query replays from the cache.
    EXPECT_GT(warm.cache_hits, 0u);
    EXPECT_EQ(warm.engine.index_queries, 0u);
    EXPECT_EQ(warm.engine.stream_scans, 0u);
  }
}

TEST(ResultCache, LruEvictionRespectsByteBudget) {
  util::MemoryTracker tracker;
  const std::size_t budget = 4096;
  ResultCache cache(budget, &tracker);
  const std::string value(200, 'x');
  for (int i = 0; i < 200; ++i) {
    cache.insert(1, "query " + std::to_string(i), value);
    EXPECT_LE(cache.stats().bytes, budget);
    EXPECT_EQ(tracker.current(util::MemTag::kResultCache),
              cache.stats().bytes);
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_LE(stats.bytes, budget);
  // Oldest entries evicted, newest resident.
  EXPECT_FALSE(cache.lookup(1, "query 0").has_value());
  EXPECT_TRUE(cache.lookup(1, "query 199").has_value());

  // Recency refresh: touching an old entry saves it from eviction.
  ResultCache lru(3 * (ResultCache::kEntryOverhead + 16 + 64));
  const std::string small(64, 'y');
  lru.insert(1, "a", small);
  lru.insert(1, "b", small);
  lru.insert(1, "c", small);
  ASSERT_TRUE(lru.lookup(1, "a").has_value());  // refresh a
  lru.insert(1, "d", small);                    // evicts b, not a
  EXPECT_TRUE(lru.lookup(1, "a").has_value());
  EXPECT_FALSE(lru.lookup(1, "b").has_value());

  // An entry bigger than the whole budget is not cached at all.
  ResultCache tiny(128, &tracker);
  tiny.insert(1, "huge", std::string(4096, 'z'));
  EXPECT_EQ(tiny.stats().entries, 0u);
  EXPECT_FALSE(tiny.lookup(1, "huge").has_value());
}

TEST(ResultCache, EpochsIsolateReloadedGraphs) {
  ResultCache cache(1u << 20);
  cache.insert(7, "degree 1", "degree 1: 3");
  EXPECT_TRUE(cache.lookup(7, "degree 1").has_value());
  EXPECT_FALSE(cache.lookup(8, "degree 1").has_value());
}

TEST(GraphCatalog, NamesEpochsAndRefCounts) {
  const auto a = make_artifacts(24, 0.3, 17, "service_catalog");
  GraphCatalog catalog;
  auto first = catalog.open("g", spec_for(a));
  EXPECT_EQ(catalog.names(), std::vector<std::string>{"g"});
  EXPECT_EQ(catalog.external_refs("g"), 1u);
  {
    auto handle = catalog.get("g");
    EXPECT_EQ(handle.get(), first.get());
    EXPECT_EQ(catalog.external_refs("g"), 2u);
  }
  EXPECT_EQ(catalog.external_refs("g"), 1u);

  // Reopening bumps the epoch; the old handle stays valid and answers.
  auto second = catalog.open("g", spec_for(a));
  EXPECT_GT(second->epoch(), first->epoch());
  EXPECT_NE(second.get(), first.get());
  QueryEngine old_engine(first);
  EXPECT_TRUE(old_engine.execute_line("degree 0").starts_with("degree 0:"));

  EXPECT_TRUE(catalog.close("g"));
  EXPECT_FALSE(catalog.close("g"));
  EXPECT_TRUE(catalog.names().empty());
  // Entries owned only by handles still serve queries.
  QueryEngine engine(second);
  EXPECT_TRUE(engine.execute_line("degree 0").starts_with("degree 0:"));

  // Mismatched artifacts are rejected whole.
  const auto b = make_artifacts(25, 0.3, 18, "service_catalog_b");
  GraphSpec bad = spec_for(a);
  bad.cliques_path = b.gsbc;  // universe 25 != graph order 24
  EXPECT_THROW(catalog.open("bad", bad), std::runtime_error);
}

TEST(Serve, StreamSessionIsByteReproducibleAcrossThreadCounts) {
  const auto a = make_artifacts(40, 0.3, 23, "service_stream");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));

  std::string script;
  script += "ping\n";
  for (const auto& line : mixed_workload(a.graph)) script += line + '\n';
  script += "shutdown\n";
  script += "degree 1\n";  // after shutdown: still answered (drain), then stop

  std::string reference;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    std::istringstream in(script);
    std::ostringstream out;
    ServeOptions options;
    options.threads = threads;
    const auto stats = serve_stream(entry, in, out, options);
    EXPECT_TRUE(stats.shutdown_requested);
    EXPECT_GT(stats.requests, 0u);
    if (threads == 1) {
      reference = out.str();
      EXPECT_NE(reference.find("ok pong\n"), std::string::npos);
      EXPECT_NE(reference.find("ok shutdown\n"), std::string::npos);
    } else {
      EXPECT_EQ(out.str(), reference) << "threads " << threads;
    }
  }
}

#if GSB_TEST_UNIX_SOCKETS
TEST(Serve, UnixSocketSessionAnswersAndShutsDown) {
  const auto a = make_artifacts(32, 0.3, 29, "service_socket");
  GraphCatalog catalog;
  auto entry = catalog.open("g", spec_for(a));
  const std::string socket_path = temp_path("service_socket.sock");
  std::remove(socket_path.c_str());

  ServeOptions options;
  options.threads = 2;
  ServeStats stats;
  std::thread server([&] {
    stats = serve_unix_socket(entry, socket_path, options);
  });

  // Connect (retrying while the server binds), run one session.
  int fd = -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());
  auto connect_client = [&]() -> int {
    for (int attempt = 0; attempt < 100; ++attempt) {
      const int client = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (client < 0) return -1;
      if (::connect(client, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return client;
      }
      ::close(client);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
  };

  // First connection: a final request with no trailing newline, delivered
  // by half-closing the write side — it must still be answered.
  const int eof_fd = connect_client();
  ASSERT_GE(eof_fd, 0) << "could not connect to " << socket_path;
  const std::string unterminated = "degree 3";
  ASSERT_EQ(::write(eof_fd, unterminated.data(), unterminated.size()),
            static_cast<ssize_t>(unterminated.size()));
  ::shutdown(eof_fd, SHUT_WR);
  std::string eof_response;
  char eof_chunk[256];
  while (true) {
    const ssize_t n = ::read(eof_fd, eof_chunk, sizeof(eof_chunk));
    if (n <= 0) break;
    eof_response.append(eof_chunk, static_cast<std::size_t>(n));
  }
  ::close(eof_fd);

  fd = connect_client();
  ASSERT_GE(fd, 0) << "could not connect to " << socket_path;

  // A query pipelined *after* shutdown in the same write must still be
  // answered before the connection closes (drain-then-stop, matching the
  // stream transport).
  const std::string request = "ping\ndegree 3\nneighbors 3\nshutdown\ndegree 5\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[512];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();

  QueryEngine reference(entry);
  EXPECT_EQ(eof_response, reference.execute_line("degree 3") + "\n");
  EXPECT_EQ(response, "ok pong\n" + reference.execute_line("degree 3") +
                          "\n" + reference.execute_line("neighbors 3") +
                          "\nok shutdown\n" +
                          reference.execute_line("degree 5") + "\n");
  EXPECT_TRUE(stats.shutdown_requested);
  EXPECT_EQ(stats.connections, 2u);
  EXPECT_EQ(stats.requests, 6u);
}
#endif  // GSB_TEST_UNIX_SOCKETS

}  // namespace
}  // namespace gsb::service
