// Differential tests for the degeneracy-ordered Bron–Kerbosch engine and
// its work-stealing parallel driver: BK over a mapped .gsbg equals BK over
// the in-memory Graph equals the Clique Enumerator's maximal set on 20
// seeded graphs, across threads 1/2/4/8; deterministic-merge emission is
// byte-identical at every thread count; the reorder window stays bounded.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/bron_kerbosch.h"
#include "core/parallel_bk.h"
#include "core/verify.h"
#include "graph/transforms.h"
#include "storage/gsbg_writer.h"
#include "storage/mapped_graph.h"
#include "tests/test_helpers.h"
#include "util/memory_tracker.h"

namespace gsb::core {
namespace {

namespace fs = std::filesystem;

std::vector<Clique> run_degeneracy_bk(const graph::GraphView& g,
                                      const SizeRange& range = {}) {
  CliqueCollector out;
  degeneracy_bk(g, out.callback(), range);
  return normalize(std::move(out.cliques()));
}

std::vector<Clique> run_parallel_bk(const graph::GraphView& g,
                                    ParallelBkOptions options = {}) {
  CliqueCollector out;
  parallel_bk(g, out.callback(), options);
  return normalize(std::move(out.cliques()));
}

/// Flat emission transcript (size-prefixed), order-sensitive.
std::vector<graph::VertexId> emission_sequence(const graph::GraphView& g,
                                               ParallelBkOptions options) {
  std::vector<graph::VertexId> flat;
  parallel_bk(
      g,
      [&](std::span<const graph::VertexId> clique) {
        flat.push_back(static_cast<graph::VertexId>(clique.size()));
        flat.insert(flat.end(), clique.begin(), clique.end());
      },
      options);
  return flat;
}

/// Writes \p g to a temporary .gsbg and returns the path.
std::string write_temp_gsbg(const graph::Graph& g, int tag) {
  const std::string path =
      (fs::temp_directory_path() /
       ("parallel_bk_test_" + std::to_string(tag) + ".gsbg"))
          .string();
  storage::write_gsbg_file(g, path);
  return path;
}

TEST(DegeneracyBk, MatchesReferenceOnSmallGraphs) {
  const auto g =
      graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_EQ(run_degeneracy_bk(g), reference_maximal_cliques(g));

  const graph::Graph edgeless(5);
  const auto singletons = run_degeneracy_bk(edgeless);
  ASSERT_EQ(singletons.size(), 5u);
  for (const auto& clique : singletons) EXPECT_EQ(clique.size(), 1u);

  const graph::Graph empty(0);
  EXPECT_TRUE(run_degeneracy_bk(empty).empty());

  const auto complete = test::random_graph(12, 1.0, 1);
  const auto one = run_degeneracy_bk(complete);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].size(), 12u);
}

TEST(DegeneracyBk, SizeRangeFiltersEmissionOnly) {
  const auto g = test::random_graph(30, 0.4, 7);
  const auto all = run_degeneracy_bk(g);
  const SizeRange range{3, 4};
  EXPECT_EQ(run_degeneracy_bk(g, range), filter_by_size(all, range));
  CliqueCollector sink;
  const auto stats = degeneracy_bk(g, sink.callback(), range);
  EXPECT_EQ(stats.maximal_cliques, all.size());
}

TEST(DegeneracyBk, VisitsFewerNodesThanImprovedOnModuleGraphs) {
  util::Rng rng(5);
  graph::ModuleGraphConfig config;
  config.n = 120;
  config.num_modules = 15;
  config.max_module_size = 12;
  config.overlap = 0.4;
  const auto mg = graph::planted_modules(config, rng);
  CliqueCounter a;
  CliqueCounter b;
  const auto improved_stats = improved_bk(mg.graph, a.callback());
  const auto degeneracy_stats = degeneracy_bk(mg.graph, b.callback());
  EXPECT_EQ(a.total(), b.total());
  EXPECT_LT(degeneracy_stats.tree_nodes, improved_stats.tree_nodes);
}

TEST(ParallelBk, DifferentialSweepMemoryMappedEnumerator) {
  for (int seed = 0; seed < 20; ++seed) {
    const std::size_t n = 30 + static_cast<std::size_t>(seed) * 2;
    const double p = 0.10 + 0.05 * (seed % 5);
    const graph::Graph g =
        test::random_graph(n, p, static_cast<std::uint64_t>(seed));
    SCOPED_TRACE("seed " + std::to_string(seed));

    // The structurally independent yardsticks: the reference enumerator
    // and the paper's Clique Enumerator (full maximal set).
    const auto expect = reference_maximal_cliques(g);
    CliqueEnumeratorOptions enum_options;
    enum_options.range = SizeRange{1, 0};
    ASSERT_EQ(test::run_clique_enumerator(g, enum_options), expect);

    // Sequential degeneracy BK over the in-memory graph.
    ASSERT_EQ(run_degeneracy_bk(g), expect);

    // Sequential degeneracy BK directly off the mapped .gsbg bitmap.
    const std::string path = write_temp_gsbg(g, seed);
    {
      const auto mapped = storage::MappedGraph::open(path);
      ASSERT_EQ(run_degeneracy_bk(mapped.view()), expect);

      // The parallel driver, over the mapped view, at every thread count.
      for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        ParallelBkOptions options;
        options.threads = threads;
        ASSERT_EQ(run_parallel_bk(mapped.view(), options), expect)
            << "threads " << threads;
      }
    }
    std::remove(path.c_str());
  }
}

TEST(ParallelBk, DeterministicMergeEmitsIdenticalSequences) {
  const graph::Graph g = test::random_graph(60, 0.3, 11);
  // The reference sequence: sequential degeneracy BK.
  std::vector<graph::VertexId> sequential;
  degeneracy_bk(g, [&](std::span<const graph::VertexId> clique) {
    sequential.push_back(static_cast<graph::VertexId>(clique.size()));
    sequential.insert(sequential.end(), clique.begin(), clique.end());
  });
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelBkOptions options;
    options.threads = threads;
    options.deterministic = true;
    EXPECT_EQ(emission_sequence(g, options), sequential)
        << "threads " << threads;
  }
}

TEST(ParallelBk, CompletionOrderModeStillYieldsTheSameSet) {
  const graph::Graph g = test::random_graph(50, 0.35, 13);
  const auto expect = run_degeneracy_bk(g);
  for (const std::size_t threads : {2u, 4u}) {
    ParallelBkOptions options;
    options.threads = threads;
    options.deterministic = false;
    EXPECT_EQ(run_parallel_bk(g, options), expect);
  }
}

TEST(ParallelBk, StaticPlanAblationMatchesToo) {
  const graph::Graph g = test::random_graph(50, 0.3, 17);
  const auto expect = run_degeneracy_bk(g);
  ParallelBkOptions options;
  options.threads = 4;
  options.dynamic_claiming = false;
  EXPECT_EQ(run_parallel_bk(g, options), expect);
}

TEST(ParallelBk, StatsAreCoherent) {
  const graph::Graph g = test::random_graph(60, 0.4, 19);
  CliqueCounter counter;
  ParallelBkOptions options;
  options.threads = 4;
  const auto stats = parallel_bk(g, counter.callback(), options);
  EXPECT_EQ(stats.base.maximal_cliques, counter.total());
  EXPECT_EQ(stats.threads, 4u);
  EXPECT_EQ(stats.degeneracy, graph::degeneracy_order(g).degeneracy);
  EXPECT_GT(stats.base.tree_nodes, 0u);
  EXPECT_EQ(stats.thread_busy_seconds.size(), 4u);
}

TEST(ParallelBk, ReorderWindowStaysBoundedAndBalanced) {
  // A clique-dense graph whose total emitted bytes dwarf any sane reorder
  // window: full buffering would hold every clique at once.
  const graph::Graph g = test::random_graph(70, 0.5, 23);
  util::MemoryTracker tracker;
  std::size_t total_flat_bytes = 0;
  ParallelBkOptions options;
  options.threads = 4;
  options.tracker = &tracker;
  // The default window (64 MiB) dwarfs this graph's whole output, so
  // nothing would bound the peak but scheduling luck; pin a window small
  // enough that backpressure is what holds the line.
  options.reorder_window_bytes = 16u * 1024u;
  const auto stats = parallel_bk(
      g,
      [&](std::span<const graph::VertexId> clique) {
        total_flat_bytes += (clique.size() + 1) * sizeof(graph::VertexId);
      },
      options);
  ASSERT_GT(total_flat_bytes, 64u * 1024u);
  // The deterministic merge may only ever hold an in-flight window, never
  // the full output.
  EXPECT_LT(stats.peak_pending_bytes, total_flat_bytes / 2);
  EXPECT_LT(tracker.peak(), total_flat_bytes / 2);
  EXPECT_EQ(tracker.current(), 0u);  // everything drained and released
  // The tracker allocates in the job body (before the scheduler's
  // finish-lock) and releases in the completion (after the scheduler's
  // drain-claim deduction), so its window strictly contains the
  // scheduler's: the peaks are close but tracker >= scheduler.
  EXPECT_GE(tracker.peak(), stats.peak_pending_bytes);
}

TEST(ParallelBk, TinyReorderWindowThrottlesAndStaysCorrect) {
  const graph::Graph g = test::random_graph(70, 0.5, 23);
  const auto expect = run_degeneracy_bk(g);
  std::size_t total_flat_bytes = 0;
  degeneracy_bk(g, [&](std::span<const graph::VertexId> clique) {
    total_flat_bytes += (clique.size() + 1) * sizeof(graph::VertexId);
  });
  ParallelBkOptions options;
  options.threads = 4;
  options.reorder_window_bytes = 4096;
  CliqueCollector out;
  const auto stats = parallel_bk(g, out.callback(), options);
  EXPECT_EQ(normalize(std::move(out.cliques())), expect);
  // Backpressure holds pending output to the window plus the outputs of
  // roots already in flight when the cap was hit — far under the total.
  EXPECT_LT(stats.peak_pending_bytes, total_flat_bytes / 4);
}

}  // namespace
}  // namespace gsb::core
