// Tests for the k-clique enumerator (§2.2) and the seed-level builder.

#include <gtest/gtest.h>

#include <map>

#include "core/kclique.h"
#include "core/verify.h"
#include "tests/test_helpers.h"

namespace gsb::core {
namespace {

std::vector<Clique> collect_kcliques(const graph::Graph& g, std::size_t k,
                                     KCliqueStats* stats = nullptr) {
  std::vector<Clique> out;
  const auto s = enumerate_kcliques(
      g, k, [&](std::span<const VertexId> clique, bool) {
        out.emplace_back(clique.begin(), clique.end());
      });
  if (stats != nullptr) *stats = s;
  return normalize(std::move(out));
}

TEST(KClique, TrianglePendantByK) {
  const auto g = graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_EQ(collect_kcliques(g, 1).size(), 4u);
  EXPECT_EQ(collect_kcliques(g, 2).size(), 4u);
  EXPECT_EQ(collect_kcliques(g, 3).size(), 1u);
  EXPECT_TRUE(collect_kcliques(g, 4).empty());
}

TEST(KClique, MaximalityClassification) {
  const auto g = graph::Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  std::map<Clique, bool> classified;
  enumerate_kcliques(g, 2,
                     [&](std::span<const VertexId> clique, bool maximal) {
                       classified[Clique(clique.begin(), clique.end())] =
                           maximal;
                     });
  ASSERT_EQ(classified.size(), 4u);
  EXPECT_FALSE((classified[{0, 1}]));  // inside the triangle
  EXPECT_FALSE((classified[{1, 2}]));
  EXPECT_FALSE((classified[{0, 2}]));
  EXPECT_TRUE((classified[{2, 3}]));  // the pendant edge is maximal
}

TEST(KClique, MaximalityMatchesOracle) {
  const auto g = test::random_graph(25, 0.35, 11);
  for (std::size_t k = 2; k <= 5; ++k) {
    enumerate_kcliques(g, k,
                       [&](std::span<const VertexId> clique, bool maximal) {
                         EXPECT_EQ(maximal, is_maximal_clique(g, clique))
                             << "k=" << k;
                       });
  }
}

TEST(KClique, SingletonLevel) {
  const auto g = graph::Graph::from_edges(3, {{0, 1}});
  std::map<Clique, bool> classified;
  enumerate_kcliques(g, 1,
                     [&](std::span<const VertexId> clique, bool maximal) {
                       classified[Clique(clique.begin(), clique.end())] =
                           maximal;
                     });
  ASSERT_EQ(classified.size(), 3u);
  EXPECT_FALSE((classified[{0}]));
  EXPECT_FALSE((classified[{1}]));
  EXPECT_TRUE((classified[{2}]));  // isolated
}

TEST(KClique, CanonicalLexicographicOrder) {
  const auto g = test::random_graph(20, 0.5, 3);
  std::vector<Clique> order;
  enumerate_kcliques(g, 3, [&](std::span<const VertexId> clique, bool) {
    order.emplace_back(clique.begin(), clique.end());
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]) << "not lexicographic at " << i;
  }
}

TEST(KClique, CountMatchesEnumeration) {
  const auto g = test::random_graph(30, 0.4, 17);
  for (std::size_t k = 2; k <= 6; ++k) {
    EXPECT_EQ(count_kcliques(g, k), collect_kcliques(g, k).size());
  }
}

TEST(KClique, BoundaryCutsRecorded) {
  // Star graph: no 3-cliques; every root branch is boundary-cut.
  graph::Graph star(8);
  for (graph::VertexId v = 1; v < 8; ++v) star.add_edge(0, v);
  KCliqueStats stats;
  const auto cliques = collect_kcliques(star, 3, &stats);
  EXPECT_TRUE(cliques.empty());
  EXPECT_GT(stats.boundary_cuts, 0u);
}

class KCliqueSweepTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, double, std::size_t, int>> {};

TEST_P(KCliqueSweepTest, MatchesReference) {
  const auto [n, p, k, seed] = GetParam();
  const auto g = test::random_graph(n, p, static_cast<std::uint64_t>(seed));
  KCliqueStats stats;
  const auto got = collect_kcliques(g, k, &stats);
  const auto expect = reference_kcliques(g, k);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(stats.total, expect.size());
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, KCliqueSweepTest,
    ::testing::Combine(::testing::Values<std::size_t>(15, 30),
                       ::testing::Values(0.2, 0.5),
                       ::testing::Values<std::size_t>(2, 3, 4),
                       ::testing::Values(1, 2)));

TEST(SeedLevel, SublistInvariants) {
  const auto g = test::random_graph(40, 0.35, 23);
  const std::size_t k = 3;
  CliqueCollector maximal;
  KCliqueStats stats;
  const Level level = build_seed_level(g, k, maximal.callback(), &stats);

  for (const auto& sublist : level) {
    // Prefix is a (k-1)-clique; tails extend it to non-maximal k-cliques.
    ASSERT_EQ(sublist.prefix.size(), k - 1);
    EXPECT_TRUE(is_clique(g, sublist.prefix));
    EXPECT_GE(sublist.tails.size(), 2u);
    // common = intersection of prefix neighborhoods.
    bits::DynamicBitset expect_common = g.neighbors(sublist.prefix[0]);
    for (std::size_t i = 1; i < sublist.prefix.size(); ++i) {
      expect_common &= g.neighbors(sublist.prefix[i]);
    }
    EXPECT_TRUE(sublist.common == expect_common);
    graph::VertexId prev = sublist.prefix.back();
    for (graph::VertexId tail : sublist.tails) {
      EXPECT_GT(tail, prev);  // ascending, above the prefix
      prev = tail;
      Clique clique = sublist.prefix;
      clique.push_back(tail);
      std::sort(clique.begin(), clique.end());
      EXPECT_TRUE(is_clique(g, clique));
      EXPECT_FALSE(is_maximal_clique(g, clique));
    }
  }
  // Emitted seed cliques are exactly the maximal k-cliques.
  auto got = normalize(std::move(maximal.cliques()));
  std::vector<Clique> expect;
  for (const auto& clique : reference_kcliques(g, k)) {
    if (is_maximal_clique(g, clique)) expect.push_back(clique);
  }
  EXPECT_EQ(got, normalize(std::move(expect)));
}

TEST(SeedLevel, RootPartitionIsLossless) {
  const auto g = test::random_graph(35, 0.4, 31);
  const std::size_t k = 3;
  CliqueCollector whole_max;
  const Level whole = build_seed_level(g, k, whole_max.callback());

  // Split roots into three arbitrary parts; union of parts == whole.
  std::vector<graph::VertexId> part1, part2, part3;
  for (graph::VertexId v = 0; v < g.order(); ++v) {
    (v % 3 == 0 ? part1 : v % 3 == 1 ? part2 : part3).push_back(v);
  }
  CliqueCollector split_max;
  Level merged;
  for (const auto& part : {part1, part2, part3}) {
    Level local =
        build_seed_level_for_roots(g, k, part, split_max.callback());
    for (auto& sublist : local) merged.push_back(std::move(sublist));
  }
  EXPECT_EQ(normalize(std::move(whole_max.cliques())),
            normalize(std::move(split_max.cliques())));

  auto key = [](const CliqueSublist& s) {
    return std::make_pair(s.prefix, s.tails);
  };
  std::vector<std::pair<Clique, std::vector<graph::VertexId>>> a, b;
  for (const auto& s : whole) a.push_back(key(s));
  for (const auto& s : merged) b.push_back(key(s));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(SeedLevel, TraceRecordsPerRootCosts) {
  const auto g = test::random_graph(30, 0.4, 41);
  std::vector<graph::VertexId> roots(g.order());
  for (graph::VertexId v = 0; v < g.order(); ++v) roots[v] = v;
  CliqueCollector sink;
  SeedTrace trace;
  build_seed_level_for_roots(g, 3, roots, sink.callback(), nullptr, &trace);
  EXPECT_EQ(trace.task_work.size(), g.order());
  EXPECT_EQ(trace.task_seconds.size(), g.order());
  std::uint64_t total_work = 0;
  for (auto w : trace.task_work) total_work += w;
  EXPECT_GT(total_work, 0u);
}

TEST(SeedLevel, PairPartitionIsLossless) {
  const auto g = test::random_graph(35, 0.4, 47);
  const std::size_t k = 4;
  CliqueCollector whole_max;
  const Level whole = build_seed_level(g, k, whole_max.callback());

  const auto pairs = collect_seed_pairs(g);
  EXPECT_EQ(pairs.size(), g.num_edges());
  // Split pairs across three arbitrary parts; union of parts == whole.
  CliqueCollector split_max;
  Level merged;
  KCliqueStats stats;
  SeedTrace trace;
  for (std::size_t part = 0; part < 3; ++part) {
    std::vector<SeedPair> mine;
    for (std::size_t i = part; i < pairs.size(); i += 3) {
      mine.push_back(pairs[i]);
    }
    Level local = build_seed_level_for_pairs(g, k, mine,
                                             split_max.callback(), &stats,
                                             &trace);
    for (auto& sublist : local) merged.push_back(std::move(sublist));
  }
  EXPECT_EQ(trace.task_work.size(), pairs.size());
  EXPECT_EQ(normalize(std::move(whole_max.cliques())),
            normalize(std::move(split_max.cliques())));

  auto key = [](const CliqueSublist& s) {
    return std::make_pair(s.prefix, s.tails);
  };
  std::vector<std::pair<Clique, std::vector<graph::VertexId>>> a, b;
  for (const auto& s : whole) a.push_back(key(s));
  for (const auto& s : merged) b.push_back(key(s));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gsb::core
