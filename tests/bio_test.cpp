// Tests for the microarray substrate: synthesis, normalization, rank
// correlation and thresholded graph construction.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "bio/correlation.h"
#include "bio/expression.h"
#include "bio/generator.h"
#include "bio/normalize.h"
#include "bio/presets.h"
#include "util/rng.h"

namespace gsb::bio {
namespace {

TEST(Expression, BasicAccess) {
  ExpressionMatrix m(3, 4);
  EXPECT_EQ(m.genes(), 3u);
  EXPECT_EQ(m.samples(), 4u);
  m.at(1, 2) = 5.5;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.5);
  EXPECT_DOUBLE_EQ(m.row(1)[2], 5.5);
  EXPECT_EQ(m.name_of(0), "gene0");
  m.set_names({"a", "b", "c"});
  EXPECT_EQ(m.name_of(2), "c");
}

TEST(Midranks, HandlesTies) {
  const std::vector<double> values{3.0, 1.0, 3.0, 2.0};
  const auto ranks = midranks(values);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[3], 2.0);
  EXPECT_DOUBLE_EQ(ranks[0], 3.5);
  EXPECT_DOUBLE_EQ(ranks[2], 3.5);
}

TEST(Correlation, PearsonKnownValues) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
  const std::vector<double> constant{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, constant), 0.0);
}

TEST(Correlation, SpearmanMonotoneInvariance) {
  util::Rng rng(3);
  std::vector<double> x(50);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = 0.8 * x[i] + 0.2 * rng.normal();
  }
  const double rho = spearman(x, y);
  // Monotone transform of x leaves Spearman unchanged.
  std::vector<double> ex(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) ex[i] = std::exp(x[i]);
  EXPECT_NEAR(spearman(ex, y), rho, 1e-9);
  // Pearson, by contrast, moves.
  EXPECT_GT(std::fabs(pearson(ex, y) - pearson(x, y)), 1e-3);
}

TEST(Correlation, MatrixSymmetricUnitDiagonal) {
  util::Rng rng(5);
  MicroarrayConfig config;
  config.genes = 30;
  config.samples = 20;
  config.modules = 3;
  const auto data = generate_microarray(config, rng);
  const auto matrix =
      correlation_matrix(data.expression, CorrelationMethod::kSpearman);
  ASSERT_EQ(matrix.size(), 30u);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    EXPECT_FLOAT_EQ(matrix.at(i, i), 1.0f);
    for (std::size_t j = 0; j < matrix.size(); ++j) {
      EXPECT_FLOAT_EQ(matrix.at(i, j), matrix.at(j, i));
      EXPECT_LE(std::fabs(matrix.at(i, j)), 1.0f + 1e-5f);
    }
  }
}

TEST(Normalize, ZscoreRows) {
  util::Rng rng(7);
  ExpressionMatrix m(5, 30);
  for (std::size_t g = 0; g < 5; ++g) {
    for (std::size_t s = 0; s < 30; ++s) {
      m.at(g, s) = rng.normal(10.0 * static_cast<double>(g), 3.0);
    }
  }
  zscore_rows(m);
  for (std::size_t g = 0; g < 5; ++g) {
    const auto row = m.row(g);
    const double mean =
        std::accumulate(row.begin(), row.end(), 0.0) / 30.0;
    double ss = 0;
    for (double v : row) ss += (v - mean) * (v - mean);
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(std::sqrt(ss / 29.0), 1.0, 1e-9);
  }
}

TEST(Normalize, ZscoreConstantRowBecomesZero) {
  ExpressionMatrix m(1, 4);
  for (std::size_t s = 0; s < 4; ++s) m.at(0, s) = 7.0;
  zscore_rows(m);
  for (double v : m.row(0)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Normalize, QuantileMakesSampleDistributionsEqual) {
  util::Rng rng(9);
  ExpressionMatrix m(40, 6);
  for (std::size_t g = 0; g < 40; ++g) {
    for (std::size_t s = 0; s < 6; ++s) {
      m.at(g, s) = rng.normal(static_cast<double>(s), 1.0 + s);
    }
  }
  quantile_normalize(m);
  // After normalization every column has the same sorted values.
  std::vector<double> reference;
  for (std::size_t g = 0; g < 40; ++g) reference.push_back(m.at(g, 0));
  std::sort(reference.begin(), reference.end());
  for (std::size_t s = 1; s < 6; ++s) {
    std::vector<double> column;
    for (std::size_t g = 0; g < 40; ++g) column.push_back(m.at(g, s));
    std::sort(column.begin(), column.end());
    for (std::size_t g = 0; g < 40; ++g) {
      EXPECT_NEAR(column[g], reference[g], 1e-9);
    }
  }
}

TEST(Normalize, Log2TransformPositive) {
  ExpressionMatrix m(1, 3);
  m.at(0, 0) = -5.0;
  m.at(0, 1) = 0.0;
  m.at(0, 2) = 3.0;
  log2_transform(m);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_NEAR(m.at(0, 1), std::log2(6.0), 1e-12);
  EXPECT_NEAR(m.at(0, 2), std::log2(9.0), 1e-12);
}

TEST(Generator, ShapesAndGroundTruth) {
  util::Rng rng(11);
  MicroarrayConfig config;
  config.genes = 100;
  config.samples = 25;
  config.modules = 6;
  config.min_module_size = 4;
  config.max_module_size = 12;
  const auto data = generate_microarray(config, rng);
  EXPECT_EQ(data.expression.genes(), 100u);
  EXPECT_EQ(data.expression.samples(), 25u);
  ASSERT_EQ(data.modules.size(), 6u);
  EXPECT_EQ(data.modules[0].size(), 12u);
  for (const auto& module : data.modules) {
    EXPECT_GE(module.size(), 4u);
    EXPECT_LE(module.size(), 12u);
  }
  EXPECT_EQ(data.expression.name_of(3), "probe_3");
}

TEST(Generator, WithinModuleCorrelationIsHigh) {
  util::Rng rng(13);
  MicroarrayConfig config;
  config.genes = 60;
  config.samples = 60;
  config.modules = 2;
  config.min_module_size = 10;
  config.max_module_size = 10;
  config.overlap = 0.0;
  config.within_module_corr = 0.9;
  const auto data = generate_microarray(config, rng);
  const auto& module = data.modules[0];
  double total = 0;
  int pairs = 0;
  for (std::size_t i = 0; i < module.size(); ++i) {
    for (std::size_t j = i + 1; j < module.size(); ++j) {
      total += pearson(data.expression.row(module[i]),
                       data.expression.row(module[j]));
      ++pairs;
    }
  }
  EXPECT_GT(total / pairs, 0.7);
}

TEST(CorrelationGraph, RecoversModules) {
  util::Rng rng(17);
  MicroarrayConfig config;
  config.genes = 120;
  config.samples = 80;
  config.modules = 3;
  config.min_module_size = 8;
  config.max_module_size = 8;
  config.overlap = 0.0;
  config.within_module_corr = 0.95;
  const auto data = generate_microarray(config, rng);

  CorrelationGraphOptions options;
  options.method = CorrelationMethod::kSpearman;
  options.threshold = 0.7;
  const auto result = build_correlation_graph(data.expression, options, rng);
  // Within-module edges should dominate: check module 0 forms a near-clique.
  const auto& module = data.modules[0];
  std::size_t present = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < module.size(); ++i) {
    for (std::size_t j = i + 1; j < module.size(); ++j) {
      ++pairs;
      present += result.graph.has_edge(module[i], module[j]);
    }
  }
  EXPECT_GE(present, pairs - 2);
  // Background density stays tiny.
  EXPECT_LT(result.graph.density(), 0.05);
}

TEST(CorrelationGraph, TargetEdgesApproximatelyHit) {
  util::Rng rng(19);
  MicroarrayConfig config;
  config.genes = 150;
  config.samples = 40;
  config.modules = 8;
  const auto data = generate_microarray(config, rng);
  CorrelationGraphOptions options;
  options.target_edges = 400;
  options.quantile_samples = 20000;
  const auto result = build_correlation_graph(data.expression, options, rng);
  EXPECT_GT(result.threshold_used, 0.0);
  EXPECT_GT(result.graph.num_edges(), 150u);
  EXPECT_LT(result.graph.num_edges(), 1000u);
}

TEST(Presets, SpecsMatchPaperAtFullScale) {
  const auto sparse = paper_spec(PaperDataset::kBrainSparse, 1.0);
  EXPECT_EQ(sparse.vertices, 12422u);
  EXPECT_EQ(sparse.edges, 6151u);
  EXPECT_EQ(sparse.max_clique, 17u);
  EXPECT_NEAR(sparse.edge_density, 0.00008, 0.00002);

  const auto dense = paper_spec(PaperDataset::kBrainDense, 1.0);
  EXPECT_EQ(dense.edges, 229297u);
  EXPECT_EQ(dense.max_clique, 110u);

  const auto myo = paper_spec(PaperDataset::kMyogenic, 1.0);
  EXPECT_EQ(myo.vertices, 2895u);
  EXPECT_EQ(myo.edges, 10914u);
  EXPECT_EQ(myo.max_clique, 28u);
  EXPECT_NEAR(myo.edge_density, 0.0026, 0.001);
}

TEST(Presets, ScalingPreservesCliqueAndShrinksCounts) {
  const auto full = paper_spec(PaperDataset::kMyogenic, 1.0);
  const auto half = paper_spec(PaperDataset::kMyogenic, 0.5);
  EXPECT_EQ(half.max_clique, full.max_clique);
  EXPECT_NEAR(static_cast<double>(half.vertices),
              static_cast<double>(full.vertices) / 2.0, 2.0);
  EXPECT_NEAR(static_cast<double>(half.edges),
              static_cast<double>(full.edges) / 2.0, 2.0);
}

TEST(Presets, GeneratedGraphMatchesSpec) {
  util::Rng rng(23);
  const double scale = 0.15;
  const auto spec = paper_spec(PaperDataset::kMyogenic, scale);
  const auto mg = make_paper_graph(PaperDataset::kMyogenic, scale, rng);
  EXPECT_EQ(mg.graph.order(), spec.vertices);
  EXPECT_NEAR(static_cast<double>(mg.graph.num_edges()),
              static_cast<double>(spec.edges),
              static_cast<double>(spec.edges) * 0.15);
  EXPECT_EQ(mg.modules[0].size(), spec.max_clique);
}

}  // namespace
}  // namespace gsb::bio
