// Tests for gsb::util — rng determinism/statistics, streaming stats,
// memory accounting, table rendering and CLI parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <regex>
#include <set>
#include <string>

#include "util/cli.h"
#include "util/log.h"
#include "util/memory_tracker.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace gsb::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(9);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SampleWithoutReplacementSortedDistinct) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(100, 20);
  ASSERT_EQ(sample.size(), 20u);
  for (std::size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);
  }
  EXPECT_LT(sample.back(), 100u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(21);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = values;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(3);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(Stats, KnownMoments) {
  StatsAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  StatsAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
  EXPECT_EQ(acc.cv(), 0.0);
}

TEST(Stats, MergeMatchesCombinedStream) {
  Rng rng(17);
  StatsAccumulator whole;
  StatsAccumulator left;
  StatsAccumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> values{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.5);
}

TEST(MemoryTracker, TracksCurrentAndPeak) {
  MemoryTracker tracker;
  tracker.allocate(100, MemTag::kBitmaps);
  tracker.allocate(50, MemTag::kGraph);
  EXPECT_EQ(tracker.current(), 150u);
  EXPECT_EQ(tracker.peak(), 150u);
  tracker.release(100, MemTag::kBitmaps);
  EXPECT_EQ(tracker.current(), 50u);
  EXPECT_EQ(tracker.peak(), 150u);
  tracker.allocate(10, MemTag::kGraph);
  EXPECT_EQ(tracker.peak(), 150u);
  EXPECT_EQ(tracker.current(MemTag::kGraph), 60u);
}

TEST(MemoryTracker, ResetPeak) {
  MemoryTracker tracker;
  tracker.allocate(100, MemTag::kScratch);
  tracker.release(100, MemTag::kScratch);
  tracker.reset_peak();
  EXPECT_EQ(tracker.peak(), 0u);
}

TEST(MemoryTracker, ScopedAllocationBalances) {
  MemoryTracker tracker;
  {
    ScopedAllocation guard(tracker, 64, MemTag::kScratch);
    EXPECT_EQ(tracker.current(), 64u);
  }
  EXPECT_EQ(tracker.current(), 0u);
  EXPECT_EQ(tracker.peak(), 64u);
}

TEST(MemoryTracker, FormatBytes) {
  EXPECT_STREQ(format_bytes(512).c_str(), "512 B");
  EXPECT_STREQ(format_bytes(2048).c_str(), "2.00 KB");
  EXPECT_STREQ(format_bytes(3u << 20).c_str(), "3.00 MB");
}

TEST(Table, RowArityChecked) {
  TableWriter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvRoundtrip) {
  TableWriter table({"x", "y"});
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  const std::string path = ::testing::TempDir() + "gsb_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[256];
  std::string content;
  while (std::fgets(buffer, sizeof(buffer), f) != nullptr) content += buffer;
  std::fclose(f);
  EXPECT_EQ(content, "x,y\n1,2\n3,4\n");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format_seconds(0.0005), "500 us");
  EXPECT_EQ(format_seconds(0.25), "250.00 ms");
  EXPECT_EQ(format_seconds(12.5), "12.500 s");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  // Note: `--flag value` is greedy, so boolean flags must use `--flag=1`,
  // be followed by another flag, or sit at the end of the command line.
  const char* argv[] = {"prog", "--scale", "0.5", "pos1", "--name=alpha",
                        "--paper"};
  Cli cli(6, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.5);
  EXPECT_TRUE(cli.get_bool("paper", false));
  EXPECT_EQ(cli.get("name", ""), "alpha");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("threads", 4), 4);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=yes", "--d"};
  Cli cli(5, argv);
  EXPECT_FALSE(cli.get_bool("a", true));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_TRUE(cli.get_bool("d", false));
}

TEST(Cli, DoubleDashEndsFlagParsing) {
  // Everything after `--` is positional, so a boolean flag can precede a
  // positional that would otherwise be swallowed as its value.
  const char* argv[] = {"prog", "--stats", "--", "degree 5", "--not-a-flag"};
  Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool("stats", false));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "degree 5");
  EXPECT_EQ(cli.positional()[1], "--not-a-flag");
  EXPECT_FALSE(cli.has("not-a-flag"));
}

TEST(Timer, MeasuresElapsed) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(timer.seconds(), 0.0);
  EXPECT_GE(timer.millis(), timer.seconds() * 1000.0 * 0.99);
}

TEST(Timer, ScopedAccumAddsUp) {
  double total = 0.0;
  {
    ScopedAccumTimer guard(total);
  }
  {
    ScopedAccumTimer guard(total);
  }
  EXPECT_GE(total, 0.0);
}

TEST(Log, LinePrefixesRfc3339TimestampAndSeverity) {
  const std::string line = format_log_line(LogLevel::kWarn, "disk is tired");
  // `<rfc3339-utc> [level] <message>\n` — fixed-width, greppable prefix.
  const std::regex shape(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z \[warn \] disk is tired\n$)");
  EXPECT_TRUE(std::regex_match(line, shape)) << line;
  EXPECT_NE(format_log_line(LogLevel::kError, "x").find(" [error] x\n"),
            std::string::npos);
  EXPECT_NE(format_log_line(LogLevel::kInfo, "x").find(" [info ] x\n"),
            std::string::npos);
  EXPECT_NE(format_log_line(LogLevel::kDebug, "x").find(" [debug] x\n"),
            std::string::npos);
}

TEST(Log, ConsecutiveLinesStayOrderedInTime) {
  const std::string first = format_log_line(LogLevel::kInfo, "a");
  const std::string second = format_log_line(LogLevel::kInfo, "b");
  // Lexicographic order of RFC 3339 stamps is chronological order.
  EXPECT_LE(first.substr(0, 20), second.substr(0, 20));
}

}  // namespace
}  // namespace gsb::util
