// Tests for the tiled out-of-core correlation builder: the edge set must be
// bit-identical to the in-memory builder's, from both an in-RAM matrix and
// an on-disk expression file, and the peak resident bytes must stay bounded
// by the tile budget + output size — not by genes².

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "bio/correlation.h"
#include "bio/generator.h"
#include "bio/normalize.h"
#include "bio/tiled_correlation.h"
#include "bitset/dynamic_bitset.h"
#include "storage/mapped_graph.h"
#include "util/rng.h"

namespace gsb {
namespace {

namespace fs = std::filesystem;

class TempPath {
 public:
  explicit TempPath(const std::string& stem) {
    static int counter = 0;
    path_ = (fs::temp_directory_path() /
             (stem + "_" + std::to_string(counter++) + ".gsbg"))
                .string();
  }
  ~TempPath() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

bio::ExpressionMatrix synthetic_expression(std::size_t genes,
                                           std::size_t samples,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  bio::MicroarrayConfig config;
  config.genes = genes;
  config.samples = samples;
  config.modules = genes / 40 + 1;
  auto data = bio::generate_microarray(config, rng);
  bio::quantile_normalize(data.expression);
  return std::move(data.expression);
}

TEST(TiledCorrelation, MatchesInMemoryBuilderEdgeForEdge) {
  for (std::uint64_t seed : {7u, 21u, 2005u}) {
    const auto expression = synthetic_expression(180, 24, seed);

    bio::CorrelationGraphOptions in_memory;
    in_memory.threshold = 0.65;
    util::Rng rng(1);
    const auto expected =
        bio::build_correlation_graph(expression, in_memory, rng);

    TempPath out("tiled");
    bio::TiledCorrelationOptions tiled;
    tiled.threshold = 0.65;
    tiled.tile_rows = 32;  // forces a multi-tile sweep
    const auto result =
        bio::build_correlation_gsbg(expression, out.path(), tiled);

    storage::MappedGraph::Options verify;
    verify.verify_checksum = true;
    const auto mapped = storage::MappedGraph::open(out.path(), verify);
    EXPECT_EQ(result.edges, expected.graph.num_edges());
    EXPECT_TRUE(mapped.load() == expected.graph) << "seed " << seed;
  }
}

TEST(TiledCorrelation, OnDiskExpressionSourceMatchesInRam) {
  const auto expression = synthetic_expression(120, 16, 77);
  TempPath matrix_file("matrix");
  bio::write_expression_binary(expression, matrix_file.path());
  bio::BinaryFileRowSource on_disk(matrix_file.path());
  ASSERT_EQ(on_disk.genes(), expression.genes());
  ASSERT_EQ(on_disk.samples(), expression.samples());

  TempPath from_ram("fromram");
  TempPath from_disk("fromdisk");
  bio::TiledCorrelationOptions options;
  options.threshold = 0.6;
  options.tile_rows = 25;  // uneven tail tile on purpose
  bio::build_correlation_gsbg(expression, from_ram.path(), options);
  bio::build_correlation_gsbg(on_disk, from_disk.path(), options);

  const auto a = storage::MappedGraph::open(from_ram.path());
  const auto b = storage::MappedGraph::open(from_disk.path());
  EXPECT_TRUE(a.load() == b.load());
}

TEST(TiledCorrelation, PeakResidentBytesStayBounded) {
  // Graph 8x the tile budget: the in-memory path would standardize all
  // genes (n*s*8) and hold the full bitmap adjacency (n*n/8); the tiled
  // path must come in well under both combined.
  const std::size_t genes = 512;
  const std::size_t samples = 24;
  const std::size_t tile = 64;
  const auto expression = synthetic_expression(genes, samples, 11);

  TempPath out("bounded");
  bio::TiledCorrelationOptions options;
  options.threshold = 0.70;
  options.tile_rows = tile;
  const auto result =
      bio::build_correlation_gsbg(expression, out.path(), options);
  ASSERT_EQ(result.tiles, genes / tile);

  const std::size_t standardized_bytes = genes * samples * sizeof(double);
  const std::size_t bitmap_bytes =
      genes * bits::DynamicBitset::word_count(genes) * sizeof(std::uint64_t);
  const std::size_t in_memory_bytes = standardized_bytes + bitmap_bytes;

  EXPECT_GT(result.peak_tracked_bytes, 0u);
  EXPECT_LT(result.peak_tracked_bytes, in_memory_bytes / 2)
      << "tiled build is not measurably below the in-memory footprint";
  // The expression-side working set specifically must be tile-sized, not
  // genes-sized: 2 tiles + edge buffer + O(n + m) CSR.
  const auto mapped = storage::MappedGraph::open(out.path());
  const std::size_t csr_bytes =
      (genes + 1) * sizeof(std::uint64_t) * 2 +
      2 * mapped.num_edges() * sizeof(std::uint32_t) + genes;
  const std::size_t tile_bytes = 3 * tile * samples * sizeof(double);
  EXPECT_LT(result.peak_tracked_bytes,
            tile_bytes + csr_bytes + (1u << 16));
}

}  // namespace
}  // namespace gsb
