// Protein-interaction network cleaning and complex detection.
//
// The paper's introduction: yeast two-hybrid screens produce undirected
// interaction graphs riddled with false positives/negatives; replicated
// experiments are combined with Boolean graph operations ("graph
// intersection and at-least-k-of-n over multiple graphs") before clique
// analysis extracts putative complexes.  This example plants a set of
// protein complexes, simulates noisy replicate screens, cleans them with
// the consensus filter, and scores recovered complexes against the ground
// truth.
//
//   $ ./protein_interaction [--proteins N] [--replicates R] [--votes K]
//                           [--fp RATE] [--fn RATE] [--seed X]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/clique_enumerator.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "netops/ops.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace gsb;
  const util::Cli cli(argc, argv);
  const auto proteins = static_cast<std::size_t>(cli.get_int("proteins", 400));
  const auto replicates = static_cast<std::size_t>(cli.get_int("replicates", 5));
  const auto votes = static_cast<std::size_t>(cli.get_int("votes", 3));
  const double fp_rate = cli.get_double("fp", 0.004);
  const double fn_rate = cli.get_double("fn", 0.10);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));

  // --- ground truth: protein complexes as planted cliques --------------------
  graph::ModuleGraphConfig config;
  config.n = proteins;
  config.num_modules = proteins / 25;
  config.min_module_size = 4;
  config.max_module_size = 12;
  config.overlap = 0.05;
  const auto truth = graph::planted_modules(config, rng);
  std::printf("ground truth: %zu proteins, %zu complexes, %zu interactions\n",
              proteins, truth.modules.size(), truth.graph.num_edges());

  // --- simulate noisy replicate screens ---------------------------------------
  std::vector<graph::Graph> screens;
  for (std::size_t r = 0; r < replicates; ++r) {
    graph::Graph screen(proteins);
    for (const auto& [u, v] : truth.graph.edge_list()) {
      if (!rng.chance(fn_rate)) screen.add_edge(u, v);  // false negatives
    }
    const auto noise = graph::gnp(proteins, fp_rate, rng);  // false positives
    for (const auto& [u, v] : noise.edge_list()) screen.add_edge(u, v);
    std::printf("  screen %zu: %zu interactions\n", r + 1,
                screen.num_edges());
    screens.push_back(std::move(screen));
  }

  // --- consensus cleaning ------------------------------------------------------
  const auto cleaned = netops::at_least_k_of_n(screens, votes);
  const auto unioned = netops::graph_union(screens);
  const auto intersected = netops::graph_intersection(screens);

  auto edge_score = [&](const graph::Graph& g) {
    std::size_t tp = 0;
    for (const auto& [u, v] : g.edge_list()) {
      tp += truth.graph.has_edge(u, v);
    }
    const double precision =
        g.num_edges() ? static_cast<double>(tp) / g.num_edges() : 0.0;
    const double recall =
        truth.graph.num_edges()
            ? static_cast<double>(tp) / truth.graph.num_edges()
            : 0.0;
    return std::pair<double, double>(precision, recall);
  };

  util::TableWriter table({"filter", "edges", "precision", "recall"});
  for (const auto& [name, g] :
       {std::pair<const char*, const graph::Graph*>{"union (1-of-n)", &unioned},
        {"at-least-k", &cleaned},
        {"intersection (n-of-n)", &intersected}}) {
    const auto [precision, recall] = edge_score(*g);
    table.add_row({name, util::format("%zu", g->num_edges()),
                   util::format("%.3f", precision),
                   util::format("%.3f", recall)});
  }
  table.print();

  // --- complexes = maximal cliques of the cleaned graph ----------------------
  core::CliqueEnumeratorOptions options;
  options.range = core::SizeRange{4, 0};
  core::CliqueCollector cliques;
  core::enumerate_maximal_cliques(cleaned, cliques.callback(), options);

  std::size_t recovered = 0;
  for (const auto& complex : truth.modules) {
    if (complex.size() < 4) continue;
    for (const auto& clique : cliques.cliques()) {
      // A complex counts as recovered when >= 80% of it sits inside one
      // reported clique.
      std::size_t inside = 0;
      for (auto member : complex) {
        inside += std::binary_search(clique.begin(), clique.end(), member);
      }
      if (inside * 5 >= complex.size() * 4) {
        ++recovered;
        break;
      }
    }
  }
  std::size_t eligible = 0;
  for (const auto& complex : truth.modules) eligible += complex.size() >= 4;
  std::printf("complex recovery: %zu / %zu planted complexes (>=80%% overlap) "
              "from %zu maximal cliques\n",
              recovered, eligible, cliques.cliques().size());
  return 0;
}
