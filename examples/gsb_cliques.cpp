// gsb_cliques — command-line maximal clique enumeration over graph files.
//
// The adoption path for this library: point it at a DIMACS .clq or edge-list
// file (e.g. a thresholded correlation graph exported from any pipeline) and
// stream maximal cliques in non-decreasing size order.
//
//   $ ./gsb_cliques graph.clq --min 5 --max 0 --threads 4
//   $ ./gsb_cliques graph.edges --format edges --count-only
//   $ ./gsb_cliques graph.clq --maximum            # just the maximum clique
//
// Flags:
//   --format dimacs|edges|binary   input format (default: by extension)
//   --min K                        Init_K lower bound (default 3)
//   --max K                        upper bound, 0 = unbounded (default 0)
//   --threads P                    worker threads, 0 = all cores (default 0)
//   --count-only                   print per-size counts instead of cliques
//   --maximum                      compute one maximum clique and exit
//   --stats                        print per-level statistics
//   --progress                     log level-by-level progress to stderr

#include <cstdio>
#include <string>

#include "analysis/clique_stats.h"
#include "core/clique_enumerator.h"
#include "core/maximum_clique.h"
#include "core/parallel_enumerator.h"
#include "graph/io.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/table.h"

namespace {

gsb::graph::Graph load_graph(const std::string& path,
                             const std::string& format) {
  using namespace gsb::graph;
  std::string kind = format;
  if (kind.empty()) {
    if (path.ends_with(".clq") || path.ends_with(".dimacs")) {
      kind = "dimacs";
    } else if (path.ends_with(".bin") || path.ends_with(".gsbg")) {
      kind = "binary";
    } else {
      kind = "edges";
    }
  }
  if (kind == "dimacs") return read_dimacs_file(path);
  if (kind == "binary") return read_binary_file(path);
  if (kind == "edges") return read_edge_list_file(path);
  throw std::runtime_error("unknown format '" + kind + "'");
}

void print_clique(std::span<const gsb::graph::VertexId> clique) {
  for (std::size_t i = 0; i < clique.size(); ++i) {
    std::printf("%s%u", i ? " " : "", clique[i]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gsb;
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: gsb_cliques <graph-file> [--format dimacs|edges|"
                 "binary] [--min K] [--max K]\n"
                 "                   [--threads P] [--count-only] [--maximum] "
                 "[--stats] [--progress]\n");
    return 2;
  }

  graph::Graph g;
  try {
    g = load_graph(cli.positional()[0], cli.get("format", ""));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "loaded %zu vertices, %zu edges (density %.4f%%)\n",
               g.order(), g.num_edges(), 100.0 * g.density());

  if (cli.get_bool("maximum", false)) {
    const auto result = core::maximum_clique(g);
    std::fprintf(stderr, "maximum clique: %zu vertices (%llu nodes, %.3f s)\n",
                 result.clique.size(),
                 static_cast<unsigned long long>(result.tree_nodes),
                 result.seconds);
    print_clique(result.clique);
    return 0;
  }

  const core::SizeRange range{
      static_cast<std::size_t>(cli.get_int("min", 3)),
      static_cast<std::size_t>(cli.get_int("max", 0))};
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const bool count_only = cli.get_bool("count-only", false);
  if (cli.get_bool("progress", false)) {
    util::set_log_level(util::LogLevel::kInfo);
  }

  core::CliqueCounter counter;
  auto counting = counter.callback();
  const core::CliqueCallback sink =
      [&](std::span<const graph::VertexId> clique) {
        counting(clique);
        if (!count_only) print_clique(clique);
      };
  const auto progress = [](const core::LevelStats& level) {
    util::log_info(util::format(
        "level k=%zu: %llu sub-lists, %llu candidates, %llu maximal",
        level.k, static_cast<unsigned long long>(level.sublists),
        static_cast<unsigned long long>(level.candidates),
        static_cast<unsigned long long>(level.maximal_emitted)));
  };

  core::EnumerationStats stats;
  if (threads == 1) {
    core::CliqueEnumeratorOptions options;
    options.range = range;
    options.progress = progress;
    stats = core::enumerate_maximal_cliques(g, sink, options);
  } else {
    core::ParallelOptions options;
    options.range = range;
    options.threads = threads;
    options.progress = progress;
    stats = core::enumerate_maximal_cliques_parallel(g, sink, options).base;
  }

  std::fprintf(stderr, "%llu maximal cliques in [%zu, %s] in %.3f s\n",
               static_cast<unsigned long long>(stats.total_maximal), range.lo,
               range.hi == 0 ? "inf" : std::to_string(range.hi).c_str(),
               stats.total_seconds);
  if (count_only) {
    util::TableWriter table({"size", "maximal cliques"});
    for (const auto& [size, count] : counter.by_size()) {
      table.add_row({util::format("%zu", size),
                     util::format("%llu",
                                  static_cast<unsigned long long>(count))});
    }
    table.print();
  }
  if (cli.get_bool("stats", false)) {
    util::TableWriter table({"k", "N[k]", "M[k]", "bytes (formula)",
                             "seconds"});
    for (const auto& level : stats.levels) {
      table.add_row(
          {util::format("%zu", level.k),
           util::format("%llu", static_cast<unsigned long long>(level.sublists)),
           util::format("%llu",
                        static_cast<unsigned long long>(level.candidates)),
           util::format_bytes(level.bytes_formula).c_str(),
           util::format("%.3f", level.seconds)});
    }
    table.print();
  }
  return 0;
}
