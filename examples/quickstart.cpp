// Quickstart: build a small graph, enumerate its maximal cliques in
// non-decreasing size order, and query the maximum clique.
//
//   $ ./quickstart

#include <cstdio>

#include "core/clique_enumerator.h"
#include "core/maximum_clique.h"
#include "graph/graph.h"

int main() {
  using namespace gsb;

  // A graph with two overlapping cliques: {0,1,2,3} and {2,3,4,5},
  // plus a pendant vertex 6 hanging off 5.
  graph::Graph g(7);
  for (auto [u, v] : {std::pair<graph::VertexId, graph::VertexId>{0, 1},
                      {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},      // K4 a
                      {2, 4}, {2, 5}, {3, 4}, {3, 5}, {4, 5},      // K4 b
                      {5, 6}}) {
    g.add_edge(u, v);
  }
  std::printf("graph: %zu vertices, %zu edges (density %.1f%%)\n", g.order(),
              g.num_edges(), 100.0 * g.density());

  // Enumerate every maximal clique of size >= 2, streamed in
  // non-decreasing order of size (the Clique Enumerator guarantee).
  core::CliqueEnumeratorOptions options;
  options.range = core::SizeRange{2, 0};  // Init_K = 2, no upper bound
  std::printf("maximal cliques (non-decreasing size):\n");
  const auto stats = core::enumerate_maximal_cliques(
      g,
      [](std::span<const graph::VertexId> clique) {
        std::printf("  {");
        for (std::size_t i = 0; i < clique.size(); ++i) {
          std::printf("%s%u", i ? ", " : "", clique[i]);
        }
        std::printf("}\n");
      },
      options);
  std::printf("total: %llu maximal cliques in %.3f ms\n",
              static_cast<unsigned long long>(stats.total_maximal),
              stats.total_seconds * 1e3);

  // Maximum clique by branch and bound.
  const auto max = core::maximum_clique(g);
  std::printf("maximum clique size: %zu\n", max.clique.size());
  return 0;
}
