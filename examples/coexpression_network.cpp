// Gene co-expression network analysis — the paper's headline pipeline.
//
// Synthesizes a microarray dataset (the stand-in for the Affymetrix U74Av2
// mouse-brain data), then runs the published pipeline end to end:
// normalization -> pairwise Spearman rank correlation -> thresholding ->
// maximum clique (upper bound) -> bounded maximal clique enumeration ->
// paraclique extraction and hub-gene reporting (the paper's Lin7c analysis).
//
//   $ ./coexpression_network [--genes N] [--samples S] [--threshold T]
//                            [--init-k K] [--threads P] [--seed X]

#include <cstdio>

#include "analysis/clique_stats.h"
#include "analysis/hubs.h"
#include "analysis/paraclique.h"
#include "bio/correlation.h"
#include "bio/generator.h"
#include "bio/normalize.h"
#include "core/clique.h"
#include "core/maximum_clique.h"
#include "core/parallel_enumerator.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace gsb;
  const util::Cli cli(argc, argv);
  const auto genes = static_cast<std::size_t>(cli.get_int("genes", 800));
  const auto samples = static_cast<std::size_t>(cli.get_int("samples", 60));
  const double threshold = cli.get_double("threshold", 0.70);
  const auto init_k = static_cast<std::size_t>(cli.get_int("init-k", 4));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 2));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 2005)));

  // --- 1. synthetic microarray ------------------------------------------------
  bio::MicroarrayConfig config;
  config.genes = genes;
  config.samples = samples;
  config.modules = genes / 40;
  config.min_module_size = 5;
  config.max_module_size = 18;
  config.within_module_corr = 0.92;
  config.overlap = 0.15;
  auto data = bio::generate_microarray(config, rng);
  std::printf("microarray: %zu probes x %zu arrays, %zu planted modules\n",
              data.expression.genes(), data.expression.samples(),
              data.modules.size());

  // --- 2. normalize + rank correlation + threshold ---------------------------
  bio::quantile_normalize(data.expression);
  bio::CorrelationGraphOptions graph_options;
  graph_options.method = bio::CorrelationMethod::kSpearman;
  graph_options.threshold = threshold;
  const auto built =
      bio::build_correlation_graph(data.expression, graph_options, rng);
  const auto& g = built.graph;
  std::printf(
      "correlation graph: |rho| >= %.2f -> %zu edges (density %.3f%%)\n",
      built.threshold_used, g.num_edges(), 100.0 * g.density());

  // --- 3. maximum clique bounds the enumeration window -----------------------
  const auto max = core::maximum_clique(g);
  std::printf("maximum clique: %zu vertices (%llu search nodes)\n",
              max.clique.size(),
              static_cast<unsigned long long>(max.tree_nodes));

  // --- 4. bounded enumeration, multithreaded ---------------------------------
  core::ParallelOptions options;
  options.range = core::SizeRange{init_k, max.clique.size()};
  options.threads = threads;
  core::CliqueCollector cliques;
  const auto stats = core::enumerate_maximal_cliques_parallel(
      g, cliques.callback(), options);
  std::printf("enumerated %llu maximal cliques in [%zu, %zu] with %zu "
              "threads in %.3f s (%llu scheduler transfers)\n",
              static_cast<unsigned long long>(stats.base.total_maximal),
              init_k, max.clique.size(), stats.threads,
              stats.base.total_seconds, static_cast<unsigned long long>(
                                            stats.total_transfers));

  const auto spectrum = analysis::clique_spectrum(cliques.cliques());
  util::TableWriter table({"clique size", "maximal cliques"});
  for (const auto& [size, count] : spectrum.size_histogram) {
    table.add_row({util::format("%zu", size),
                   util::format("%llu",
                                static_cast<unsigned long long>(count))});
  }
  table.print();

  // --- 5. paraclique + hub genes ---------------------------------------------
  const auto para = analysis::grow_paraclique(g, max.clique, {1, 0});
  std::printf("paraclique (glom 1): %zu members, density %.3f\n",
              para.members.size(), para.density);

  const auto hubs = analysis::top_hubs(g, cliques.cliques(), 5);
  std::printf("top hub probes (the paper's Lin7c analysis):\n");
  for (const auto& hub : hubs) {
    std::printf("  %-12s degree=%-4zu clique-participation=%u\n",
                data.expression.name_of(hub.vertex).c_str(), hub.degree,
                hub.clique_participation);
  }
  return 0;
}
