// Character compatibility in phylogenetics via maximum clique (§2.1: "the
// compatibility problem in phylogeny").
//
// In the perfect-phylogeny setting, binary characters (columns of a
// taxa x characters matrix) are pairwise *compatible* when no pair of
// characters exhibits all four gamete patterns 00/01/10/11 across taxa.  A
// maximum mutually-compatible character set is a maximum clique of the
// compatibility graph — typically dense, which is exactly where the FPT
// vertex-cover route (k = n - omega small) beats direct branch and bound.
//
//   $ ./phylogeny_compatibility [--taxa T] [--characters C] [--noise P]
//                               [--seed X]

#include <cstdio>
#include <vector>

#include "core/maximum_clique.h"
#include "fpt/max_clique_vc.h"
#include "graph/graph.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

/// Collects the clades of a random binary tree over taxa [lo, hi) as
/// intervals; a laminar interval family is pairwise compatible by the
/// four-gamete test, so clean characters drawn from it admit a perfect
/// phylogeny.
void collect_clades(std::size_t lo, std::size_t hi,
                    std::vector<std::pair<std::size_t, std::size_t>>& clades,
                    gsb::util::Rng& rng) {
  if (hi - lo < 2) return;
  clades.emplace_back(lo, hi);
  const std::size_t split = lo + 1 + rng.below(hi - lo - 1);
  collect_clades(lo, split, clades, rng);
  collect_clades(split, hi, clades, rng);
}

/// Generates binary characters as clades of one hidden tree, then flips
/// entries at the given noise rate (noise introduces incompatibilities —
/// homoplasy / sequencing error).
std::vector<std::vector<int>> synth_characters(std::size_t taxa,
                                               std::size_t characters,
                                               double noise,
                                               gsb::util::Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> clades;
  collect_clades(0, taxa, clades, rng);
  std::vector<std::vector<int>> matrix(characters, std::vector<int>(taxa, 0));
  for (auto& column : matrix) {
    const auto& [lo, hi] = clades[rng.below(clades.size())];
    for (std::size_t t = lo; t < hi; ++t) column[t] = 1;
    for (std::size_t t = 0; t < taxa; ++t) {
      if (rng.chance(noise)) column[t] ^= 1;
    }
  }
  return matrix;
}

bool compatible(const std::vector<int>& a, const std::vector<int>& b) {
  bool seen[2][2] = {{false, false}, {false, false}};
  for (std::size_t t = 0; t < a.size(); ++t) seen[a[t]][b[t]] = true;
  return !(seen[0][0] && seen[0][1] && seen[1][0] && seen[1][1]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gsb;
  const util::Cli cli(argc, argv);
  const auto taxa = static_cast<std::size_t>(cli.get_int("taxa", 40));
  const auto characters =
      static_cast<std::size_t>(cli.get_int("characters", 70));
  const double noise = cli.get_double("noise", 0.02);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 11)));

  const auto matrix = synth_characters(taxa, characters, noise, rng);

  // Compatibility graph over characters.
  graph::Graph g(characters);
  for (graph::VertexId i = 0; i < characters; ++i) {
    for (graph::VertexId j = i + 1; j < characters; ++j) {
      if (compatible(matrix[i], matrix[j])) g.add_edge(i, j);
    }
  }
  std::printf("compatibility graph: %zu characters, %zu edges "
              "(density %.1f%%)\n",
              characters, g.num_edges(), 100.0 * g.density());

  // Route 1: FPT vertex cover on the complement (the paper's route).
  util::Timer vc_timer;
  const auto via_vc = fpt::maximum_clique_via_vertex_cover(g);
  const double vc_seconds = vc_timer.seconds();

  // Route 2: direct branch and bound (cross-check).
  util::Timer bnb_timer;
  const auto via_bnb = core::maximum_clique(g);
  const double bnb_seconds = bnb_timer.seconds();

  std::printf("max mutually-compatible character set: %zu of %zu\n",
              via_vc.clique.size(), characters);
  std::printf("  via FPT vertex cover : %zu (k = n - omega = %zu, %llu VC "
              "nodes, %.3f ms)\n",
              via_vc.clique.size(), characters - via_vc.clique.size(),
              static_cast<unsigned long long>(via_vc.tree_nodes),
              vc_seconds * 1e3);
  std::printf("  via branch and bound : %zu (%llu nodes, %.3f ms)\n",
              via_bnb.clique.size(),
              static_cast<unsigned long long>(via_bnb.tree_nodes),
              bnb_seconds * 1e3);
  if (via_vc.clique.size() != via_bnb.clique.size()) {
    std::printf("DISAGREEMENT — this is a bug\n");
    return 1;
  }
  std::printf("routes agree; %zu characters must be discarded to obtain a "
              "perfect phylogeny candidate set\n",
              characters - via_vc.clique.size());
  return 0;
}
